#include "serve/scheduler.hpp"

#include <chrono>
#include <stdexcept>

namespace fftmv::serve {

namespace {

using clock = std::chrono::steady_clock;

double seconds_between(clock::time_point a, clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

AsyncScheduler::AsyncScheduler(const device::DeviceSpec& spec, ServeOptions options)
    : options_(options),
      dev_(spec),
      setup_stream_(dev_),
      cache_(dev_, options.plan_cache_capacity),
      queue_(options.max_batch, options.linger_seconds) {
  if (options_.num_streams < 1) {
    throw std::invalid_argument("AsyncScheduler: num_streams must be >= 1");
  }
  lanes_.resize(static_cast<std::size_t>(options_.num_streams));
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    lanes_[i].stream = std::make_unique<device::Stream>(dev_);
  }
  // Streams first, then workers: a worker may touch any lane state
  // only through its own index.
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    lanes_[i].worker = std::thread([this, i] { worker_loop(static_cast<int>(i)); });
  }
}

AsyncScheduler::~AsyncScheduler() { shutdown(); }

TenantId AsyncScheduler::add_tenant(const core::ProblemDims& dims,
                                    std::span<const double> first_block_col) {
  const auto local = core::LocalDims::single_rank(dims);
  // The expensive setup (batched FFT of the block column, fp32
  // spectrum warm — the latter so the lazily-cast copy is never raced
  // later) runs before the tenants lock is taken: registration must
  // not stall data-plane lanes looking up other tenants.  Its own
  // mutex serialises concurrent registrations on the setup stream.
  std::shared_ptr<core::BlockToeplitzOperator> op;
  {
    std::lock_guard setup_lock(setup_mutex_);
    op = std::make_shared<core::BlockToeplitzOperator>(dev_, setup_stream_, local,
                                                       first_block_col);
    op->spectrum_f(setup_stream_);
  }
  std::lock_guard lock(tenants_mutex_);
  const TenantId id = next_tenant_++;
  tenants_.emplace(id, Tenant{local, std::move(op)});
  return id;
}

std::future<MatvecResult> AsyncScheduler::submit(TenantId tenant, Direction direction,
                                                 const precision::PrecisionConfig& config,
                                                 std::vector<double> input) {
  core::LocalDims dims;
  {
    std::lock_guard lock(tenants_mutex_);
    const auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      throw std::invalid_argument("AsyncScheduler::submit: unknown tenant " +
                                  std::to_string(tenant));
    }
    dims = it->second.dims;
  }
  const index_t expect = direction == Direction::kForward
                             ? dims.n_t() * dims.n_m_local
                             : dims.n_t() * dims.n_d_local;
  if (static_cast<index_t>(input.size()) != expect) {
    throw std::invalid_argument(
        "AsyncScheduler::submit: input extent " + std::to_string(input.size()) +
        ", expected " + std::to_string(expect));
  }

  PendingRequest req;
  req.input = std::move(input);
  req.enqueued = clock::now();
  std::future<MatvecResult> future = req.promise.get_future();

  {
    std::lock_guard lock(state_mutex_);
    if (!accepting_) {
      throw std::runtime_error("AsyncScheduler::submit: scheduler is shut down");
    }
    ++in_flight_;
  }
  // Counted (and the serving wall clock started) before the push: a
  // lane may pop and finish the request before this thread resumes,
  // and completed must never exceed submitted in a metrics() snapshot.
  metrics_.record_submit();

  const BatchKey key{tenant, direction, config.to_string()};
  if (!queue_.push(key, std::move(req))) {
    // close() raced with the accepting_ check; undo the accept.
    metrics_.undo_submit();
    std::lock_guard lock(state_mutex_);
    --in_flight_;
    cv_drained_.notify_all();
    throw std::runtime_error("AsyncScheduler::submit: scheduler is shut down");
  }
  return future;
}

void AsyncScheduler::worker_loop(int lane) {
  while (auto batch = queue_.pop_batch()) {
    execute_batch(lane, *batch);
  }
}

void AsyncScheduler::execute_batch(int lane, Batch& batch) {
  const auto exec_start = clock::now();
  device::Stream& stream = *lanes_[static_cast<std::size_t>(lane)].stream;
  const double sim_start = stream.now();

  std::shared_ptr<core::BlockToeplitzOperator> op;
  core::LocalDims dims;
  std::shared_ptr<core::FftMatvecPlan> plan;
  precision::PrecisionConfig config;
  std::exception_ptr batch_error;
  try {
    {
      std::lock_guard lock(tenants_mutex_);
      const Tenant& t = tenants_.at(batch.key.tenant);
      op = t.op;
      dims = t.dims;
    }
    config = precision::PrecisionConfig::parse(batch.key.precision);
    plan = cache_.acquire(
        PlanKey{dims, options_.matvec, batch.key.precision, dev_.spec().name, lane},
        stream);
  } catch (...) {
    batch_error = std::current_exception();
  }

  const int batch_size = static_cast<int>(batch.requests.size());
  const std::size_t b = batch.requests.size();

  // The whole coalesced batch executes as ONE fused apply_batch: the
  // cached plan's phase-2/4 FFTs run b * n_s sequences in one launch
  // and phase 3 is a single multi-RHS SBGEMV, so the operator's
  // matrix traffic is paid once per batch instead of once per
  // request.  The batch's simulated time and PhaseTimings are
  // attributed evenly across its members.
  std::vector<MatvecResult> results(b);
  core::PhaseTimings share;
  double sim_share = 0.0;
  if (!batch_error) {
    try {
      const bool forward = batch.key.direction == Direction::kForward;
      const index_t out_len =
          forward ? dims.n_t() * dims.n_d_local : dims.n_t() * dims.n_m_local;
      std::vector<core::ConstVectorView> inputs(b);
      std::vector<core::VectorView> outputs(b);
      for (std::size_t r = 0; r < b; ++r) {
        results[r].output.resize(static_cast<std::size_t>(out_len));
        inputs[r] = batch.requests[r].input;
        outputs[r] = results[r].output;
      }
      const double apply_sim0 = stream.now();
      plan->apply_batch(*op,
                        forward ? core::ApplyDirection::kForward
                                : core::ApplyDirection::kAdjoint,
                        config, inputs, outputs);
      sim_share = (stream.now() - apply_sim0) / static_cast<double>(b);
      share = plan->last_timings();
      share *= 1.0 / static_cast<double>(b);
    } catch (...) {
      batch_error = std::current_exception();
    }
  }

  std::int64_t done = 0;
  for (std::size_t r = 0; r < b; ++r) {
    auto& req = batch.requests[r];
    const double queue_s = seconds_between(req.enqueued, exec_start);
    bool failed = false;
    if (batch_error) {
      req.promise.set_exception(batch_error);
      failed = true;
    } else {
      MatvecResult result = std::move(results[r]);
      result.sim_seconds = sim_share;
      result.timings = share;
      result.queue_seconds = queue_s;
      result.exec_seconds = seconds_between(exec_start, clock::now());
      result.batch_size = batch_size;
      result.lane = lane;
      req.promise.set_value(std::move(result));
    }
    metrics_.record_request(queue_s, seconds_between(exec_start, clock::now()), failed);
    ++done;
  }
  metrics_.record_batch(batch_size, stream.now() - sim_start);

  const auto cache_stats = cache_.stats();
  metrics_.record_cache(cache_stats.hits, cache_stats.misses, cache_stats.evictions);

  {
    std::lock_guard lock(state_mutex_);
    in_flight_ -= done;
    if (in_flight_ == 0) cv_drained_.notify_all();
  }
}

void AsyncScheduler::drain() {
  std::unique_lock lock(state_mutex_);
  cv_drained_.wait(lock, [&] { return in_flight_ == 0; });
}

void AsyncScheduler::shutdown() {
  {
    std::lock_guard lock(state_mutex_);
    accepting_ = false;
  }
  // Workers drain everything already queued before pop_batch returns
  // nullopt, so accepted futures are all fulfilled.
  queue_.close();
  bool join = false;
  {
    std::lock_guard lock(state_mutex_);
    if (!workers_stopped_) {
      workers_stopped_ = true;
      join = true;
    }
  }
  if (join) {
    for (auto& lane : lanes_) {
      if (lane.worker.joinable()) lane.worker.join();
    }
  }
  drain();
}

MetricsSnapshot AsyncScheduler::metrics() const {
  // Refresh cache counters even before the first batch executes.
  const auto cache_stats = cache_.stats();
  metrics_.record_cache(cache_stats.hits, cache_stats.misses, cache_stats.evictions);
  return metrics_.snapshot();
}

double AsyncScheduler::max_lane_sim_seconds() const {
  double m = 0.0;
  for (const auto& lane : lanes_) m = std::max(m, lane.stream->now());
  return m;
}

}  // namespace fftmv::serve
