// Request coalescing for the matvec service: a multi-producer,
// multi-consumer queue that groups same-key requests into batches.
//
// Shape-keyed coalescing rules: requests batch together iff their
// plan-relevant shape (LocalDims), direction and precision config all
// match — tenant identity deliberately does NOT split keys.  Nothing
// in pipeline phases 1/2/4/5 is tenant-specific, and the phase-3
// grouped SBGEMV (blas::sbgemv_grouped) takes a per-group operator
// pointer, so one fused apply_batch can serve several tenants'
// same-shape requests; the scheduler sorts a popped batch by tenant
// into operator groups before dispatch.  Under realistic multi-tenant
// skew (many tenants, few in-flight requests each) this is the
// difference between effective batch sizes of ~1 and ~max_batch.  The
// `tenant` field exists only for the same-tenant-only ablation
// (ServeOptions::cross_tenant_batching == false, the PR 3 behaviour);
// the production path always leaves it 0.
//
// A batch is released when it reaches `max_batch` requests or when
// its oldest request has lingered `linger_seconds` (so a lone request
// is never parked indefinitely waiting for company).  Keys are served
// round-robin: after a key is dispatched it moves to the back of the
// rotation, giving per-shape fairness under skewed load (per-tenant
// fairness within a shared key degenerates to FIFO, which cannot
// starve: every coalesced companion rides the same dispatch).
//
// Group-aware admission: `max_groups` (0 = unlimited) caps the number
// of DISTINCT tenants a popped batch may span.  Each tenant group in
// the fused grouped SBGEMV re-pays the operator's per-frequency
// matrix traffic, so a batch of b singleton tenants costs b matrix
// reads — under many-tiny-tenant skew the cap keeps the grouped
// GEMV's matrix traffic bounded.  The take loop stops (in FIFO order)
// at the first request that would introduce group max_groups + 1;
// leftovers stay queued, keep their linger deadlines, and ride the
// key's next round-robin turn, so nothing starves.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <compare>
#include <optional>
#include <string>
#include <vector>

#include "core/matvec_plan.hpp"
#include "util/types.hpp"

namespace fftmv::serve {

using TenantId = std::uint64_t;

enum class Direction : unsigned char { kForward, kAdjoint };

inline const char* direction_name(Direction d) {
  return d == Direction::kForward ? "F" : "F*";
}

/// Completed request payload delivered through the future.
struct MatvecResult {
  std::vector<double> output;
  double queue_seconds = 0.0;  ///< submit -> batch execution start (wall)
  double exec_seconds = 0.0;   ///< execution start -> completion (wall)
  /// This request's share of the batch's end-to-end simulated
  /// duration (makespan): shares sum to the lane's clock advance even
  /// when a pipelined batch overlapped SBGEMV with FFT across its
  /// stream pair.  Per-phase busy time lives in `timings`.
  double sim_seconds = 0.0;
  /// This request's share of the batch's per-phase simulated times: a
  /// coalesced batch runs as ONE fused apply_batch, and the batch
  /// totals are attributed by each request's share of the modelled
  /// phase work (FftMatvecPlan::last_batch_timings) — even for the
  /// tenant-agnostic phases, weighted by operator-group size for the
  /// grouped SBGEMV.
  core::PhaseTimings timings;
  int batch_size = 0;          ///< size of the batch this request rode in
  int lane = -1;               ///< stream lane that executed it
};

/// Coalescing key: requests batch together iff shape (LocalDims),
/// direction and precision config match (see the header comment).
/// `tenant` stays 0 except in the same-tenant-only ablation mode.
/// The defaulted ordering (for the std::map of per-key queues) stays
/// in sync with equality by construction, however LocalDims evolves.
struct BatchKey {
  core::LocalDims dims;
  Direction direction = Direction::kForward;
  std::string precision;  ///< PrecisionConfig::to_string()
  TenantId tenant = 0;    ///< 0 unless cross-tenant batching is disabled

  auto operator<=>(const BatchKey&) const = default;
};

struct PendingRequest {
  TenantId tenant = 0;  ///< submitting tenant (selects the operator)
  std::vector<double> input;
  std::promise<MatvecResult> promise;
  std::chrono::steady_clock::time_point enqueued;
};

struct Batch {
  BatchKey key;
  std::vector<PendingRequest> requests;
};

class RequestQueue {
 public:
  /// `max_groups` caps distinct tenants per popped batch; 0 = unlimited.
  RequestQueue(int max_batch, double linger_seconds, int max_groups = 0);

  /// Enqueue one request (any thread).  Returns false after close():
  /// the caller keeps the request and must fail its promise itself.
  bool push(const BatchKey& key, PendingRequest request);

  /// Block until a batch is ready (or the queue is closed and empty,
  /// returning nullopt).  Multiple consumers may pop concurrently;
  /// each call serves the next key in the round-robin rotation.
  std::optional<Batch> pop_batch();

  /// Stop accepting pushes and wake consumers.  Already-queued
  /// requests still drain through pop_batch (graceful shutdown).
  void close();

  std::size_t pending() const;
  int max_batch() const { return max_batch_; }
  double linger_seconds() const { return linger_seconds_; }
  int max_groups() const { return max_groups_; }

 private:
  int max_batch_;
  double linger_seconds_;
  int max_groups_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<BatchKey, std::deque<PendingRequest>> queues_;
  /// Keys with pending requests, in service order (front is next).
  std::list<BatchKey> rotation_;
  std::size_t total_pending_ = 0;
  bool closed_ = false;
};

}  // namespace fftmv::serve
