// Request coalescing for the matvec service: a multi-producer,
// multi-consumer queue that groups same-key requests into batches.
//
// Shape-keyed coalescing rules: requests batch together iff their
// plan-relevant shape (LocalDims), direction and precision config all
// match — tenant identity deliberately does NOT split keys.  Nothing
// in pipeline phases 1/2/4/5 is tenant-specific, and the phase-3
// grouped SBGEMV (blas::sbgemv_grouped) takes a per-group operator
// pointer, so one fused apply_batch can serve several tenants'
// same-shape requests; the scheduler sorts a popped batch by tenant
// into operator groups before dispatch.  Under realistic multi-tenant
// skew (many tenants, few in-flight requests each) this is the
// difference between effective batch sizes of ~1 and ~max_batch.  The
// `tenant` field exists only for the same-tenant-only ablation
// (ServeOptions::cross_tenant_batching == false, the PR 3 behaviour);
// the production path always leaves it 0.
//
// A batch is released when it reaches `max_batch` requests or when
// its oldest request has lingered `linger_seconds` (so a lone request
// is never parked indefinitely waiting for company); a request whose
// deadline lands inside the linger window cancels the remaining
// linger — batching never spends latency a deadline cannot afford.
//
// Scheduling (deadline_aware == true, the production mode):
//   - WITHIN a key, requests are kept in earliest-deadline-first
//     (EDF) order, ties broken by arrival sequence so best-effort
//     requests (no deadline) and equal-deadline streams stay FIFO.  A
//     late-deadline request can therefore never starve an earlier
//     deadline in its key: the earlier deadline is always taken
//     first.
//   - ACROSS keys, dispatch follows weighted fair queueing
//     (start-time fair queueing): each key carries a virtual start
//     tag, a dispatched batch of n requests advances the key's tag by
//     n / weight (the max StreamQoS::weight among the taken
//     requests), and pop_batch serves the ready key with the
//     smallest tag.  With equal weights this degenerates to the PR 2
//     round-robin; with skewed weights the served-request ratio
//     between backlogged keys tracks the weight ratio.
// deadline_aware == false restores the blind PR 2-5 behaviour (FIFO
// within a key, round-robin across keys) and exists for the
// bench/serve_slo baseline ablation.
//
// Group-aware admission: `max_groups` (0 = unlimited) caps the number
// of DISTINCT tenants a popped batch may span.  Each tenant group in
// the fused grouped SBGEMV re-pays the operator's per-frequency
// matrix traffic, so a batch of b singleton tenants costs b matrix
// reads — under many-tiny-tenant skew the cap keeps the grouped
// GEMV's matrix traffic bounded.  The take loop stops (in service
// order) at the first request that would introduce group
// max_groups + 1; leftovers stay queued, keep their linger deadlines,
// and ride the key's next turn, so nothing starves.
#pragma once

#include <chrono>
#include <compare>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/matvec_plan.hpp"
#include "precision/precision.hpp"
#include "serve/error_code.hpp"
#include "util/types.hpp"

namespace fftmv::serve {

using TenantId = std::uint64_t;
/// Streaming-session handle id; 0 marks a one-shot (sessionless)
/// request throughout the serving layer.
using SessionId = std::uint64_t;

/// Short display name for an apply direction ("F" / "F*").  Free
/// function over the core enum — the serving layer has no direction
/// enum of its own.
inline const char* direction_name(core::ApplyDirection d) {
  return d == core::ApplyDirection::kForward ? "F" : "F*";
}

/// Per-request / per-session quality of service.
struct StreamQoS {
  /// Relative completion deadline: a request must be fulfilled within
  /// this many wall seconds of its submission or it counts as a
  /// deadline miss (ServeMetrics::deadline_missed).  The batcher
  /// serves earlier deadlines first within a coalescing key and cuts
  /// linger short for urgent requests.  0 = best effort (no deadline;
  /// best-effort requests sort behind every deadlined one in a key).
  double deadline_seconds = 0.0;
  /// Weighted-fair-queueing weight (> 0): while two keys are both
  /// backlogged, their served-request ratio tracks their weight
  /// ratio.  1 is the neutral default.
  double weight = 1.0;
};

/// One matvec request, the struct form of AsyncScheduler::submit.
/// New request-path fields land here instead of growing a positional
/// argument list; the positional submit overload is a thin wrapper
/// that fills in default QoS.
struct Request {
  TenantId tenant = 0;
  core::ApplyDirection direction = core::ApplyDirection::kForward;
  precision::PrecisionConfig config;
  /// TOSI input (n_t x n_m for forward, n_t x n_d for adjoint).
  std::vector<double> input;
  StreamQoS qos;
};

/// Completed request payload delivered through the future.
struct MatvecResult {
  std::vector<double> output;
  double queue_seconds = 0.0;  ///< submit -> batch execution start (wall)
  double exec_seconds = 0.0;   ///< execution start -> completion (wall)
  /// This request's share of the batch's end-to-end simulated
  /// duration (makespan): shares sum to the lane's clock advance even
  /// when a pipelined batch overlapped SBGEMV with FFT across its
  /// stream pair.  Per-phase busy time lives in `timings`.
  double sim_seconds = 0.0;
  /// This request's share of the batch's per-phase simulated times: a
  /// coalesced batch runs as ONE fused apply_batch, and the batch
  /// totals are attributed by each request's share of the modelled
  /// phase work (FftMatvecPlan::last_batch_timings) — even for the
  /// tenant-agnostic phases, weighted by operator-group size for the
  /// grouped SBGEMV.
  core::PhaseTimings timings;
  int batch_size = 0;          ///< size of the batch this request rode in
  int lane = -1;               ///< stream lane that executed it
  /// Global dispatch sequence number of the batch this request rode
  /// in (0-based; stamped by RequestQueue::pop_batch under the queue
  /// mutex, so it is increasing in queue-pop order regardless of how
  /// the lanes interleave afterwards): lets a client observe dispatch
  /// ordering — e.g. that a session's applies left the queue in
  /// submit order.
  std::int64_t batch_seq = -1;
  /// Owning streaming session, 0 for one-shot requests.
  SessionId session = 0;
  /// True iff the request carried a deadline and was fulfilled after
  /// it (also counted in ServeMetrics::deadline_missed).
  bool deadline_missed = false;
  /// Outcome code: kOk on success, otherwise why the request failed.
  /// Failures always arrive as a value with this field set — never as
  /// a future exception (see AsyncScheduler's error contract).
  ErrorCode error = ErrorCode::kOk;
  /// Re-dispatches this request's work consumed beyond the first
  /// attempt (batch-level retries plus any per-request quarantine
  /// re-dispatch).  0 on the clean path.
  int retries = 0;

  bool ok() const { return error == ErrorCode::kOk; }
};

/// Coalescing key: requests batch together iff shape (LocalDims),
/// direction and precision config match (see the header comment).
/// `tenant` stays 0 except in the same-tenant-only ablation mode.
/// The defaulted ordering (for the std::map of per-key queues) stays
/// in sync with equality by construction, however LocalDims evolves.
struct BatchKey {
  core::LocalDims dims;
  core::ApplyDirection direction = core::ApplyDirection::kForward;
  std::string precision;  ///< PrecisionConfig::to_string()
  TenantId tenant = 0;    ///< 0 unless cross-tenant batching is disabled

  auto operator<=>(const BatchKey&) const = default;
};

struct PendingRequest {
  TenantId tenant = 0;  ///< submitting tenant (selects the operator)
  SessionId session = 0;
  std::vector<double> input;
  std::promise<MatvecResult> promise;
  std::chrono::steady_clock::time_point enqueued;
  /// Absolute completion deadline; time_point::max() = best effort.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// WFQ weight carried from StreamQoS (1 for plain submits).
  double weight = 1.0;
  /// Queue-assigned arrival sequence: the EDF tie-break, so equal
  /// deadlines (in particular one session's stream of applies, whose
  /// absolute deadlines are non-decreasing) keep FIFO order.
  std::uint64_t seq = 0;
  /// util::trace async-span id pairing the submit-side queue_wait
  /// begin with its end at dispatch; 0 = tracing was off at submit.
  std::uint64_t trace_id = 0;
  /// True for work that was already dispatched once and is riding the
  /// queue again for a retry (e.g. a quarantined solo re-dispatch).
  /// The shed-best-effort overload policy never displaces such a
  /// request: shedding work that already consumed device time trades
  /// sunk cost for churn, and a retried request must not lose its
  /// admission to a newer best-effort arrival.
  bool retrying = false;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

struct Batch {
  BatchKey key;
  std::vector<PendingRequest> requests;
  /// Pop-order sequence number -> MatvecResult::batch_seq.  Assigned
  /// while the queue mutex is held, so two lanes can never stamp
  /// consecutive pops out of order.
  std::int64_t seq = -1;
};

/// What happens to new work when the queue sits at max_queue_depth.
enum class OverloadPolicy : unsigned char {
  /// Refuse the incoming request (ErrorCode::kQueueFull) regardless
  /// of its class.
  kRejectNew,
  /// Admit deadline-bearing requests by displacing the NEWEST pending
  /// best-effort request (ErrorCode::kShed); best-effort arrivals are
  /// refused as in kRejectNew.  Under overload this keeps the
  /// tight-deadline classes admitted while best-effort load absorbs
  /// the loss.
  kShedBestEffort,
};

class RequestQueue {
 public:
  /// `max_groups` caps distinct tenants per popped batch (0 =
  /// unlimited); `deadline_aware` selects EDF-within-key + WFQ-
  /// across-keys (true, production) vs FIFO + round-robin (false, the
  /// deadline-blind baseline).  `max_queue_depth` bounds total
  /// pending requests (0 = unbounded); `policy` picks what gives way
  /// at the bound.
  RequestQueue(int max_batch, double linger_seconds, int max_groups = 0,
               bool deadline_aware = true, int max_queue_depth = 0,
               OverloadPolicy policy = OverloadPolicy::kShedBestEffort);

  /// Outcome of a push attempt.  When the request was not accepted it
  /// comes back in `returned` (the queue never owns a promise it will
  /// not fulfil); a displaced victim under kShedBestEffort comes back
  /// in `shed`.  The caller fails the returned promises — outside the
  /// queue lock.
  struct PushOutcome {
    enum class Status : unsigned char { kAccepted, kClosed, kFull };
    Status status = Status::kAccepted;
    std::optional<PendingRequest> returned;
    std::optional<PendingRequest> shed;

    bool accepted() const { return status == Status::kAccepted; }
  };

  /// Enqueue one request (any thread).  Status kClosed after close(),
  /// kFull when bounded admission refused it; see PushOutcome.
  PushOutcome push(const BatchKey& key, PendingRequest request);

  /// Block until a batch is ready (or the queue is closed and empty,
  /// returning nullopt).  Multiple consumers may pop concurrently;
  /// each call serves the scheduling-order next key (WFQ or
  /// round-robin, see the header comment).
  std::optional<Batch> pop_batch();

  /// Stop accepting pushes and wake consumers.  Already-queued
  /// requests still drain through pop_batch (graceful shutdown).
  void close();

  std::size_t pending() const;
  int max_batch() const { return max_batch_; }
  double linger_seconds() const { return linger_seconds_; }
  int max_groups() const { return max_groups_; }
  bool deadline_aware() const { return deadline_aware_; }
  int max_queue_depth() const { return max_queue_depth_; }
  OverloadPolicy overload_policy() const { return policy_; }

 private:
  /// Per-key queue + weighted-fair-queueing state.
  struct KeyQueue {
    /// EDF order (deadline, seq) in deadline-aware mode, FIFO in the
    /// blind mode; the take loop always pops the front.
    std::deque<PendingRequest> q;
    /// SFQ virtual start tag: dispatch candidates are served in
    /// increasing tag order, and a dispatch advances the tag by
    /// requests_taken / weight.
    double vstart = 0.0;
    /// Activation sequence, the tag tie-break (FIFO among equals —
    /// exactly round-robin when all weights are 1).
    std::uint64_t activation = 0;
  };

  /// The wall time at which `kq` becomes dispatchable: the oldest
  /// request's linger expiry, cut short by the key's earliest
  /// deadline.  Assumes the queue mutex is held.
  std::chrono::steady_clock::time_point release_time(const KeyQueue& kq) const;

  /// Remove the newest pending best-effort request (largest arrival
  /// seq with no deadline, skipping dispatched-and-retrying work) to
  /// make room, maintaining the key activation bookkeeping.  Assumes
  /// the queue mutex is held; nullopt when every pending request
  /// carries a deadline or is retrying.
  std::optional<PendingRequest> shed_newest_best_effort();

  int max_batch_;
  double linger_seconds_;
  int max_groups_;
  bool deadline_aware_;
  int max_queue_depth_;
  OverloadPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<BatchKey, KeyQueue> queues_;
  /// Keys with pending requests in arrival order; the blind mode's
  /// round-robin rotation (front is next).
  std::list<BatchKey> rotation_;
  /// SFQ finish tags of deactivated keys: a key that empties and
  /// refills resumes at max(global virtual time, its old finish), so
  /// draining and immediately re-pushing cannot out-run fairness.
  /// Entries at or behind the global virtual time are pruned on
  /// reactivation, and pop_batch sweeps the rest opportunistically
  /// whenever the map outgrows the live key space — so keys that
  /// empty and never return (per-tenant keys, shape/precision churn)
  /// cannot grow it without bound.
  std::map<BatchKey, double> vfinish_;
  double vtime_ = 0.0;  ///< global virtual time (tag of the last dispatch)
  std::int64_t next_batch_seq_ = 0;  ///< pop-order stamp -> Batch::seq
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_activation_ = 0;
  std::size_t total_pending_ = 0;
  bool closed_ = false;
};

}  // namespace fftmv::serve
