// Request coalescing for the matvec service: a multi-producer,
// multi-consumer queue that groups same-key requests into batches.
//
// Requests that share a BatchKey (tenant, direction, precision
// config) apply the same operator through the same cached plan, so
// executing them back-to-back amortises plan/cache lookup and keeps
// one lane's stream on one shape — the tcFFT observation that batched
// same-shape transforms are where GPU throughput comes from.  A batch
// is released when it reaches `max_batch` requests or when its oldest
// request has lingered `linger_seconds` (so a lone request is never
// parked indefinitely waiting for company).  Keys are served
// round-robin: after a key is dispatched it moves to the back of the
// rotation, giving per-tenant fairness under skewed load.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/matvec_plan.hpp"
#include "util/types.hpp"

namespace fftmv::serve {

using TenantId = std::uint64_t;

enum class Direction : unsigned char { kForward, kAdjoint };

inline const char* direction_name(Direction d) {
  return d == Direction::kForward ? "F" : "F*";
}

/// Completed request payload delivered through the future.
struct MatvecResult {
  std::vector<double> output;
  double queue_seconds = 0.0;  ///< submit -> batch execution start (wall)
  double exec_seconds = 0.0;   ///< execution start -> completion (wall)
  double sim_seconds = 0.0;    ///< simulated device seconds of this apply
  /// This request's share of the batch's per-phase simulated times: a
  /// coalesced batch runs as ONE fused apply_batch, so the batch
  /// totals are attributed evenly across its members.
  core::PhaseTimings timings;
  int batch_size = 0;          ///< size of the batch this request rode in
  int lane = -1;               ///< stream lane that executed it
};

/// Coalescing key: requests batch together iff all three match.
struct BatchKey {
  TenantId tenant = 0;
  Direction direction = Direction::kForward;
  std::string precision;  ///< PrecisionConfig::to_string()

  bool operator==(const BatchKey&) const = default;
  /// Ordering for the std::map of per-key queues.
  bool operator<(const BatchKey& o) const {
    if (tenant != o.tenant) return tenant < o.tenant;
    if (direction != o.direction) return direction < o.direction;
    return precision < o.precision;
  }
};

struct PendingRequest {
  std::vector<double> input;
  std::promise<MatvecResult> promise;
  std::chrono::steady_clock::time_point enqueued;
};

struct Batch {
  BatchKey key;
  std::vector<PendingRequest> requests;
};

class RequestQueue {
 public:
  RequestQueue(int max_batch, double linger_seconds);

  /// Enqueue one request (any thread).  Returns false after close():
  /// the caller keeps the request and must fail its promise itself.
  bool push(const BatchKey& key, PendingRequest request);

  /// Block until a batch is ready (or the queue is closed and empty,
  /// returning nullopt).  Multiple consumers may pop concurrently;
  /// each call serves the next key in the round-robin rotation.
  std::optional<Batch> pop_batch();

  /// Stop accepting pushes and wake consumers.  Already-queued
  /// requests still drain through pop_batch (graceful shutdown).
  void close();

  std::size_t pending() const;
  int max_batch() const { return max_batch_; }
  double linger_seconds() const { return linger_seconds_; }

 private:
  int max_batch_;
  double linger_seconds_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<BatchKey, std::deque<PendingRequest>> queues_;
  /// Keys with pending requests, in service order (front is next).
  std::list<BatchKey> rotation_;
  std::size_t total_pending_ = 0;
  bool closed_ = false;
};

}  // namespace fftmv::serve
