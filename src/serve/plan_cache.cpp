#include "serve/plan_cache.hpp"

#include <functional>
#include <stdexcept>

#include "util/trace.hpp"

namespace fftmv::serve {

namespace {

void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Instant trace event for a cache transition, emitted OUTSIDE the
/// cache lock (argument strings allocate).  One enabled() branch when
/// tracing is off.
void trace_cache_event(const char* name, const PlanKey& key) {
  if (!util::trace::enabled()) return;
  const auto& d = key.dims.global;
  util::trace::instant(
      name, "cache",
      {{"shape", std::to_string(d.n_m) + "x" + std::to_string(d.n_d) + "x" +
                     std::to_string(d.n_t)},
       {"lane", key.lane}});
}

}  // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& k) const noexcept {
  std::size_t h = std::hash<std::string>{}(k.device);
  hash_combine(h, static_cast<std::size_t>(k.lane));
  const auto& d = k.dims;
  for (const index_t v : {d.global.n_m, d.global.n_d, d.global.n_t, d.n_m_local,
                          d.n_d_local, d.m_offset, d.d_offset}) {
    hash_combine(h, std::hash<index_t>{}(v));
  }
  hash_combine(h, static_cast<std::size_t>(k.options.gemv_policy));
  hash_combine(h, static_cast<std::size_t>(k.options.fuse_casts));
  // NetworkSpec participates in equality but not the hash (it is
  // uniform across a deployment); unequal specs simply collide.
  return h;
}

PlanCache::PlanCache(device::Device& dev, std::size_t capacity)
    : dev_(&dev), capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("PlanCache: capacity must be >= 1");
  }
}

std::shared_ptr<core::FftMatvecPlan> PlanCache::acquire(const PlanKey& key,
                                                        device::Stream& stream) {
  std::shared_ptr<core::FftMatvecPlan> hit;
  {
    std::lock_guard lock(mutex_);
    if (const auto it = index_.find(key); it != index_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      hit = it->second->second;
    } else {
      ++stats_.misses;
    }
  }
  if (hit != nullptr) {
    trace_cache_event("plan_cache_hit", key);
    return hit;
  }
  trace_cache_event("plan_cache_miss", key);
  // Built outside the lock so one lane's cold miss never stalls the
  // other lanes' lookups (keys are lane-scoped in the scheduler, so
  // concurrent same-key builds do not arise there; if an external
  // caller races one, the loser's plan is simply dropped below).
  auto plan =
      std::make_shared<core::FftMatvecPlan>(*dev_, stream, key.dims, key.options);
  std::shared_ptr<core::FftMatvecPlan> result;
  std::int64_t evicted = 0;
  {
    std::lock_guard lock(mutex_);
    if (const auto it = index_.find(key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      result = it->second->second;
    } else {
      lru_.emplace_front(key, std::move(plan));
      const auto inserted = lru_.begin();
      index_[key] = inserted;
      // Trim beyond capacity, least-recently-used first, skipping
      // pinned entries (an active session's plan is never evicted)
      // and never the just-inserted entry: acquire must hand back the
      // plan for `key`, so the new entry is not a victim candidate
      // even when every other resident entry is pinned.  If nothing
      // is evictable the cache temporarily overflows instead of
      // evicting hot session state; open_stream's capacity validation
      // keeps production out of that regime.
      std::size_t resident = lru_.size();
      for (auto it = std::prev(lru_.end());
           resident > capacity_ && it != inserted;) {
        const auto victim = it;
        --it;
        if (!pinned_locked(victim->first)) {
          index_.erase(victim->first);
          lru_.erase(victim);
          --resident;
          ++stats_.evictions;
          ++evicted;
        }
      }
      result = inserted->second;
    }
  }
  if (evicted > 0 && util::trace::enabled()) {
    util::trace::instant("plan_cache_evict", "cache",
                         {{"evicted", evicted}, {"lane", key.lane}});
  }
  return result;
}

void PlanCache::pin(const PlanKey& key) {
  {
    std::lock_guard lock(mutex_);
    ++pins_[pin_scope(key)];
  }
  trace_cache_event("plan_cache_pin", key);
}

void PlanCache::unpin(const PlanKey& key) {
  {
    std::lock_guard lock(mutex_);
    const auto it = pins_.find(pin_scope(key));
    if (it == pins_.end()) return;  // unmatched unpin: harmless no-op
    if (--it->second <= 0) pins_.erase(it);
  }
  trace_cache_event("plan_cache_unpin", key);
}

bool PlanCache::pinned(const PlanKey& key) const {
  std::lock_guard lock(mutex_);
  return pinned_locked(key);
}

std::size_t PlanCache::pinned_shapes() const {
  std::lock_guard lock(mutex_);
  return pins_.size();
}

std::shared_ptr<core::FftMatvecPlan> PlanCache::peek(const PlanKey& key) const {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : it->second->second;
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace fftmv::serve
