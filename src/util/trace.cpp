#include "util/trace.hpp"

#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/table.hpp"

namespace fftmv::util::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

struct Event {
  std::string name;
  const char* cat = "";  ///< call sites pass string literals
  char ph = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;
  int pid = kHostPid;
  int tid = 0;
  std::uint64_t id = 0;  ///< async pair id ("b"/"e" only)
  std::vector<Arg> args;
};

/// One thread's bounded event ring.  The owning thread (and the
/// exporter) lock `mutex`; no other thread ever touches it, so the
/// emission hot path contends only with a concurrent export.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> ring;
  std::size_t capacity = kDefaultRingCapacity;
  std::uint64_t count = 0;    ///< pushed since the last start()/clear()
  std::uint64_t dropped = 0;  ///< overwritten by overflow
  int tid = 0;
  std::string name;  ///< set_thread_name; survives start()/clear()

  void push(Event ev) {
    std::lock_guard lock(mutex);
    if (ring.size() < capacity) {
      ring.push_back(std::move(ev));
    } else if (capacity > 0) {
      ring[static_cast<std::size_t>(count % capacity)] = std::move(ev);
      ++dropped;
    } else {
      ++dropped;
    }
    ++count;
  }
};

struct SessionState {
  std::mutex mutex;  ///< guards buffers / device_tracks / t0 / capacity
  /// Owned per-thread buffers; never deallocated before process exit,
  /// so the thread-local pointers below stay valid across
  /// start()/clear().
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::map<int, std::string> device_tracks;
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  std::size_t ring_capacity = kDefaultRingCapacity;
  std::atomic<std::uint64_t> next_id{1};
};

SessionState& state() {
  static SessionState s;
  return s;
}

thread_local ThreadBuffer* tl_buffer = nullptr;

ThreadBuffer& buffer() {
  if (tl_buffer != nullptr) return *tl_buffer;
  SessionState& s = state();
  std::lock_guard lock(s.mutex);
  auto buf = std::make_unique<ThreadBuffer>();
  buf->tid = static_cast<int>(s.buffers.size());
  buf->capacity = s.ring_capacity;
  tl_buffer = buf.get();
  s.buffers.push_back(std::move(buf));
  return *tl_buffer;
}

void write_args(std::ostream& os, const std::vector<Arg>& args) {
  os << "\"args\": {";
  for (std::size_t i = 0; i < args.size(); ++i) {
    const Arg& a = args[i];
    os << (i ? ", " : "") << '"' << Table::json_escape(a.key) << "\": ";
    switch (a.kind) {
      case Arg::Kind::kString:
        os << '"' << Table::json_escape(a.str) << '"';
        break;
      case Arg::Kind::kDouble:
        os << a.num;
        break;
      case Arg::Kind::kInt:
        os << a.inum;
        break;
    }
  }
  os << '}';
}

void write_event(std::ostream& os, const Event& ev, bool& first) {
  os << (first ? "\n  " : ",\n  ");
  first = false;
  os << "{\"name\": \"" << Table::json_escape(ev.name) << "\", \"ph\": \""
     << ev.ph << "\", \"ts\": " << ev.ts_us << ", \"pid\": " << ev.pid
     << ", \"tid\": " << ev.tid;
  if (ev.cat[0] != '\0') os << ", \"cat\": \"" << Table::json_escape(ev.cat) << '"';
  if (ev.ph == 'X') os << ", \"dur\": " << ev.dur_us;
  if (ev.ph == 'b' || ev.ph == 'e') os << ", \"id\": " << ev.id;
  if (!ev.args.empty() || ev.ph == 'M') {
    os << ", ";
    write_args(os, ev.args);
  }
  os << '}';
}

Event metadata(const char* name, int pid, int tid, const std::string& value) {
  Event ev;
  ev.name = name;
  ev.ph = 'M';
  ev.pid = pid;
  ev.tid = tid;
  ev.args.push_back(Arg{"name", value});
  return ev;
}

}  // namespace

void start(std::size_t ring_capacity) {
  SessionState& s = state();
  {
    std::lock_guard lock(s.mutex);
    s.ring_capacity = ring_capacity;
    for (auto& buf : s.buffers) {
      std::lock_guard buf_lock(buf->mutex);
      buf->ring.clear();
      buf->capacity = ring_capacity;
      buf->count = 0;
      buf->dropped = 0;
    }
    s.t0 = std::chrono::steady_clock::now();
  }
  detail::g_enabled.store(true, std::memory_order_release);
}

void stop() { detail::g_enabled.store(false, std::memory_order_release); }

void clear() {
  SessionState& s = state();
  std::lock_guard lock(s.mutex);
  for (auto& buf : s.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    buf->ring.clear();
    buf->count = 0;
    buf->dropped = 0;
  }
}

Stats stats() {
  SessionState& s = state();
  Stats out;
  std::lock_guard lock(s.mutex);
  for (auto& buf : s.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    out.events += buf->ring.size();
    out.dropped += buf->dropped;
  }
  return out;
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - state().t0)
      .count();
}

std::uint64_t next_id() {
  return state().next_id.fetch_add(1, std::memory_order_relaxed);
}

void set_thread_name(const std::string& name) {
  ThreadBuffer& buf = buffer();
  std::lock_guard lock(buf.mutex);
  buf.name = name;
}

void set_device_track_name(int tid, const std::string& name) {
  SessionState& s = state();
  std::lock_guard lock(s.mutex);
  s.device_tracks[tid] = name;
}

void complete(const char* name, const char* cat, double ts_us, double dur_us,
              std::initializer_list<Arg> args) {
  if (!enabled()) return;
  Event ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'X';
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.args.assign(args.begin(), args.end());
  ThreadBuffer& buf = buffer();
  ev.tid = buf.tid;
  buf.push(std::move(ev));
}

void complete_device(int tid, const char* name, const char* cat,
                     double ts_seconds, double dur_seconds,
                     std::initializer_list<Arg> args) {
  if (!enabled()) return;
  Event ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'X';
  ev.ts_us = ts_seconds * 1e6;
  ev.dur_us = dur_seconds * 1e6;
  ev.pid = kDevicePid;
  ev.tid = tid;
  ev.args.assign(args.begin(), args.end());
  buffer().push(std::move(ev));
}

void instant(const char* name, const char* cat,
             std::initializer_list<Arg> args) {
  if (!enabled()) return;
  Event ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'i';
  ev.ts_us = now_us();
  ev.args.assign(args.begin(), args.end());
  ThreadBuffer& buf = buffer();
  ev.tid = buf.tid;
  buf.push(std::move(ev));
}

void counter(const char* name, double value) {
  if (!enabled()) return;
  Event ev;
  ev.name = name;
  ev.ph = 'C';
  ev.ts_us = now_us();
  ev.args.push_back(Arg{"value", value});
  ThreadBuffer& buf = buffer();
  ev.tid = buf.tid;
  buf.push(std::move(ev));
}

void async_begin(const char* name, const char* cat, std::uint64_t id,
                 std::initializer_list<Arg> args) {
  if (!enabled()) return;
  Event ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'b';
  ev.ts_us = now_us();
  ev.id = id;
  ev.args.assign(args.begin(), args.end());
  ThreadBuffer& buf = buffer();
  ev.tid = buf.tid;
  buf.push(std::move(ev));
}

void async_end(const char* name, const char* cat, std::uint64_t id) {
  if (!enabled()) return;
  Event ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'e';
  ev.ts_us = now_us();
  ev.id = id;
  ThreadBuffer& buf = buffer();
  ev.tid = buf.tid;
  buf.push(std::move(ev));
}

void write_json(std::ostream& os) {
  SessionState& s = state();
  std::lock_guard lock(s.mutex);
  os.precision(15);
  os << "{\"traceEvents\": [";
  bool first = true;
  // Metadata first: process names for the two clock domains, then the
  // registered host-thread and device-track names (every event —
  // metadata included — carries a ts, keeping schema checks uniform).
  write_event(os, metadata("process_name", kHostPid, 0, "host (wall clock)"),
              first);
  write_event(
      os, metadata("process_name", kDevicePid, 0, "device (simulated clock)"),
      first);
  for (const auto& buf : s.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    if (!buf->name.empty()) {
      write_event(os, metadata("thread_name", kHostPid, buf->tid, buf->name),
                  first);
    }
  }
  for (const auto& [tid, name] : s.device_tracks) {
    write_event(os, metadata("thread_name", kDevicePid, tid, name), first);
  }
  std::uint64_t events = 0, dropped = 0;
  for (const auto& buf : s.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    const std::size_t n = buf->ring.size();
    events += n;
    dropped += buf->dropped;
    // Oldest-first ring order: once wrapped, slot (count + i) % cap
    // walks the surviving window chronologically.
    const bool wrapped = buf->count > n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t slot =
          wrapped ? static_cast<std::size_t>((buf->count + i) % buf->capacity)
                  : i;
      write_event(os, buf->ring[slot], first);
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"event_count\": "
     << events << ", \"dropped_events\": " << dropped << "}}\n";
}

bool write_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return out.good();
}

}  // namespace fftmv::util::trace
