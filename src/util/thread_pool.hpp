// Persistent worker pool with a blocking parallel_for.
//
// The simulated GPU runtime (src/device) executes kernel gridblocks
// on this pool: numerics are computed for real on host threads while
// the cost model assigns the simulated device time.  The pool is also
// used directly by host-side batched operations.
//
// Submission is safe from any thread, including from inside a task
// body running on this pool (nested use) and from several submitter
// threads at once — the serving scheduler (src/serve) dispatches
// batches from its own worker threads, each of which drives kernels
// through the shared global pool.  Pending tasks queue FIFO; every
// participant (workers and the submitting thread, which always joins
// in) claims contiguous chunks until the task is exhausted, and each
// submitter blocks only on its own task's completion.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/types.hpp"

namespace fftmv::util {

class ThreadPool {
 public:
  /// `num_threads == 0` selects the hardware concurrency.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Run `body(i)` for i in [0, count) across the pool and block until
  /// all iterations complete.  Iterations are distributed in
  /// contiguous chunks to preserve locality of the strided batched
  /// kernels.  Exceptions from `body` are captured and the first one
  /// is rethrown on the calling thread.
  void parallel_for(index_t count, const std::function<void(index_t)>& body);

  /// Chunked variant: `body(begin, end)` receives contiguous ranges.
  /// Prefer this for fine-grained iterations.
  void parallel_for_chunks(index_t count,
                           const std::function<void(index_t, index_t)>& body);

  /// Process-wide pool, sized to hardware concurrency.  The simulated
  /// device and the host-side batched helpers share it so the machine
  /// is never oversubscribed.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(index_t, index_t)>* body = nullptr;
    index_t count = 0;
    index_t chunk = 0;
    std::atomic<index_t> next{0};
    std::atomic<index_t> remaining{0};
    /// Workers currently inside run_task() for this task; the
    /// submitter must not destroy the task until this drops to zero.
    std::atomic<int> active{0};
    /// Still linked in queue_ (cleared by whoever exhausts the chunk
    /// counter).
    bool queued = false;
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop();
  void run_task(Task& task);
  void dequeue(Task& task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  /// Tasks with unclaimed chunks, FIFO.  Tasks live on their
  /// submitter's stack; per-task `active`/`remaining` gate teardown.
  std::deque<Task*> queue_;
  bool stop_ = false;
};

/// Convenience wrapper over the global pool.
void parallel_for(index_t count, const std::function<void(index_t)>& body);

}  // namespace fftmv::util
