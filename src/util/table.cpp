#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fftmv::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string Table::fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace fftmv::util
