#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fftmv::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string Table::fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c));
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Table::print_json(std::ostream& os) const {
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '[';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? ", " : "") << '"' << json_escape(cells[c]) << '"';
    }
    os << ']';
  };
  os << "{\"headers\": ";
  print_cells(headers_);
  os << ", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) os << ", ";
    print_cells(rows_[r]);
  }
  os << "]}";
}

}  // namespace fftmv::util
