// Small integer/math helpers used across modules.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/types.hpp"

namespace fftmv::util {

constexpr index_t ceil_div(index_t a, index_t b) {
  return (a + b - 1) / b;
}

constexpr bool is_pow2(index_t n) {
  return n > 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n >= 1).
constexpr index_t next_pow2(index_t n) {
  index_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Integer log2 for exact powers of two.
constexpr int log2_exact(index_t n) {
  int k = 0;
  while ((index_t{1} << k) < n) ++k;
  return k;
}

/// ceil(log2(n)) for n >= 1; 0 for n == 1.  Used by the collective
/// cost model (tree depth) and the FFT error model.
constexpr double log2_ceil(index_t n) {
  return static_cast<double>(log2_exact(n));
}

/// All positive divisors of n in increasing order.  Used by the
/// communication-aware partitioner to enumerate grid shapes.
inline std::vector<index_t> divisors(index_t n) {
  if (n <= 0) throw std::invalid_argument("divisors: n must be positive");
  std::vector<index_t> low, high;
  for (index_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      low.push_back(d);
      if (d != n / d) high.push_back(n / d);
    }
  }
  for (auto it = high.rbegin(); it != high.rend(); ++it) low.push_back(*it);
  return low;
}

}  // namespace fftmv::util
