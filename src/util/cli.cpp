#include "util/cli.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fftmv::util {

namespace {

bool looks_like_flag(const std::string& tok) {
  if (tok.size() < 2 || tok[0] != '-') return false;
  // Negative numbers are values, not flags.
  const char c = tok[1];
  return !(c >= '0' && c <= '9') && c != '.';
}

}  // namespace

CliParser::CliParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (!looks_like_flag(tok)) {
      throw std::invalid_argument("unexpected positional argument: " + tok);
    }
    std::string key = tok.substr(tok.find_first_not_of('-'));
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "";
    }
  }
}

bool CliParser::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string CliParser::get_string(const std::string& key,
                                  const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() || it->second.empty() ? fallback : it->second;
}

index_t CliParser::get_int(const std::string& key, index_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  try {
    return static_cast<index_t>(std::stoll(it->second));
  } catch (const std::exception&) {
    throw std::invalid_argument("flag -" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

double CliParser::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag -" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

bool CliParser::get_flag(const std::string& key) const { return has(key); }

void CliParser::check_known(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : values_) {
    bool found = false;
    for (const auto& k : known) {
      if (k == key) {
        found = true;
        break;
      }
    }
    if (found) continue;
    std::string nearest;
    std::size_t best = std::numeric_limits<std::size_t>::max();
    for (const auto& k : known) {
      const std::size_t d = edit_distance(key, k);
      if (d < best) {
        best = d;
        nearest = k;
      }
    }
    std::string msg = "unknown flag -" + key;
    if (!nearest.empty()) msg += " (did you mean -" + nearest + "?)";
    throw std::invalid_argument(msg);
  }
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // One-row dynamic program; flags are a handful of characters, so
  // quadratic time is irrelevant.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
    }
  }
  return row[b.size()];
}

std::vector<std::string> CliParser::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace fftmv::util
