#include "util/cli.hpp"

#include <stdexcept>

namespace fftmv::util {

namespace {

bool looks_like_flag(const std::string& tok) {
  if (tok.size() < 2 || tok[0] != '-') return false;
  // Negative numbers are values, not flags.
  const char c = tok[1];
  return !(c >= '0' && c <= '9') && c != '.';
}

}  // namespace

CliParser::CliParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (!looks_like_flag(tok)) {
      throw std::invalid_argument("unexpected positional argument: " + tok);
    }
    std::string key = tok.substr(tok.find_first_not_of('-'));
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "";
    }
  }
}

bool CliParser::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string CliParser::get_string(const std::string& key,
                                  const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() || it->second.empty() ? fallback : it->second;
}

index_t CliParser::get_int(const std::string& key, index_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  try {
    return static_cast<index_t>(std::stoll(it->second));
  } catch (const std::exception&) {
    throw std::invalid_argument("flag -" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

double CliParser::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag -" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

bool CliParser::get_flag(const std::string& key) const { return has(key); }

std::vector<std::string> CliParser::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace fftmv::util
