// Binary vector I/O — the artifact's `-s <directory>` workflow:
// FFTMatvec saves output vectors so mixed-precision results can be
// compared offline against the double-precision baseline.
//
// Format: 16-byte header (magic "FMV1", element kind, count) followed
// by raw little-endian payload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace fftmv::util {

/// Write a double vector; throws std::runtime_error on I/O failure.
void save_vector(const std::string& path, const std::vector<double>& data);

/// Read a vector written by save_vector; throws std::runtime_error on
/// missing file, bad magic, or truncated payload.
std::vector<double> load_vector(const std::string& path);

}  // namespace fftmv::util
