// Minimal command-line parser mirroring the FFTMatvec executable's
// flag style (paper Artifact Description): `-nm 5000 -nd 100 -Nt 1000
// -prec dssdd -rand -raw`.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace fftmv::util {

class CliParser {
 public:
  /// Parses `-key value` pairs and bare `-flag` switches.  A token
  /// starting with '-' whose next token also starts with '-' (or is
  /// absent) is treated as a boolean switch.  Unrecognised positional
  /// tokens throw std::invalid_argument.
  CliParser(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& fallback) const;
  index_t get_int(const std::string& key, index_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_flag(const std::string& key) const;

  /// Keys seen on the command line (without leading '-').
  std::vector<std::string> keys() const;

  /// Reject flags outside `known`: throws std::invalid_argument naming
  /// the offending flag and the nearest known flag (edit distance), so
  /// typos like `-perc` for `-prec` fail loudly instead of being
  /// silently absorbed.  Call once after construction with the
  /// executable's full flag set.
  void check_known(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;  // "" means bare switch
};

/// Levenshtein edit distance (insert/delete/substitute, unit costs);
/// used for the unknown-flag suggestions.
std::size_t edit_distance(const std::string& a, const std::string& b);

}  // namespace fftmv::util
