#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace fftmv::util {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("FFTMV_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  std::cerr << "[fftmv:" << level_name(level) << "] " << msg << '\n';
}

}  // namespace fftmv::util
