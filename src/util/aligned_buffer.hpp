// Cache-line/SIMD aligned host buffer with RAII ownership.
//
// All bulk data in the library (vectors, Fourier-space operators,
// communication staging areas) lives in AlignedBuffer-backed storage
// so that the vectorised kernels can assume alignment and so that
// allocation failures surface as exceptions at a single choke point.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

#include "util/types.hpp"

namespace fftmv::util {

/// Default alignment: 64 bytes covers x86 cache lines and AVX-512
/// vectors, and matches the 16-byte vectorised load granularity the
/// paper's optimized SBGEMV kernel assumes with room to spare.
inline constexpr std::size_t kDefaultAlignment = 64;

/// Untyped aligned allocation; throws std::bad_alloc on failure.
void* aligned_alloc_bytes(std::size_t bytes, std::size_t alignment = kDefaultAlignment);
void aligned_free_bytes(void* p) noexcept;

/// Typed, owning, aligned array.  Move-only: the buffers are large
/// (gigabytes at paper scale) and implicit copies would be bugs.
template <class T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(index_t count) { reset(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Reallocate to hold `count` elements; contents are uninitialised.
  void reset(index_t count) {
    release();
    if (count > 0) {
      data_ = static_cast<T*>(
          aligned_alloc_bytes(static_cast<std::size_t>(count) * sizeof(T)));
      size_ = count;
    }
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  index_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](index_t i) noexcept { return data_[i]; }
  const T& operator[](index_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  void release() noexcept {
    if (data_ != nullptr) {
      aligned_free_bytes(data_);
      data_ = nullptr;
      size_ = 0;
    }
  }

  T* data_ = nullptr;
  index_t size_ = 0;
};

}  // namespace fftmv::util
