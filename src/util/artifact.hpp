// Tracked JSON artifact of a harness or server run — the CI
// perf-regression baseline (cmake/perf_diff.py diffs these between
// runs).  Pass `--json <path>` (consumed from argv before any other
// flag parser sees it) and every util::Table registered through add()
// is written as
//   {"bench": "<name>", "git_sha": ..., "build_type": ...,
//    "tables": [{"name": ..., "headers": [...], "rows": [[...]]}]}
// The git SHA and build type header fields make perf diffs
// attributable; they come from the build system (fftmv_build_info in
// the top-level CMakeLists), with fallbacks so out-of-tree compiles
// keep working.  Without `--json` add() is a no-op.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/table.hpp"

#ifndef FFTMV_GIT_SHA
#define FFTMV_GIT_SHA "unknown"
#endif
#ifndef FFTMV_BUILD_TYPE
#define FFTMV_BUILD_TYPE "unknown"
#endif

namespace fftmv::util {

/// Remove every occurrence of the flag spelled `name` or `alt` from
/// argv (so downstream flag parsers never see it) and return whether
/// it was present.  With `value != nullptr` the token following the
/// flag is consumed into it; a flag requiring a value but given none
/// fails loudly.  Keeps the argv[argc] == NULL contract.
inline bool consume_flag(int& argc, char** argv, const std::string& name,
                         const std::string& alt, std::string* value = nullptr) {
  bool seen = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok != name && tok != alt) {
      argv[out++] = argv[i];
      continue;
    }
    seen = true;
    if (value != nullptr) {
      if (i + 1 >= argc) {
        // Fail at the point of the mistake rather than silently
        // running without the flag's effect.
        std::cerr << "cli: " << tok << " requires a value\n";
        std::exit(1);
      }
      *value = argv[++i];
    }
  }
  argv[out] = nullptr;
  argc = out;
  return seen;
}

class Artifact {
 public:
  Artifact(std::string bench_name, int& argc, char** argv)
      : bench_name_(std::move(bench_name)) {
    consume_flag(argc, argv, "--json", "-json", &path_);
  }

  bool enabled() const { return !path_.empty(); }

  void add(const std::string& table_name, const Table& table) {
    if (!enabled()) return;
    std::ostringstream os;
    os << "{\"name\": \"" << Table::json_escape(table_name) << "\", ";
    std::ostringstream body;
    table.print_json(body);
    // Splice the table's {"headers": ..., "rows": ...} members into
    // this entry's object.
    os << body.str().substr(1);
    entries_.push_back(os.str());
  }

  /// Write the artifact (no-op when --json was absent).  Returns the
  /// path written, empty if disabled.
  std::string write() const {
    if (!enabled()) return {};
    std::ofstream out(path_);
    if (!out) throw std::runtime_error("Artifact: cannot open " + path_);
    out << "{\"bench\": \"" << Table::json_escape(bench_name_)
        << "\", \"git_sha\": \"" << Table::json_escape(FFTMV_GIT_SHA)
        << "\", \"build_type\": \"" << Table::json_escape(FFTMV_BUILD_TYPE)
        << "\", \"tables\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out << (i ? ", " : "") << entries_[i];
    }
    out << "]}\n";
    return path_;
  }

 private:
  std::string bench_name_;
  std::string path_;
  std::vector<std::string> entries_;
};

}  // namespace fftmv::util
