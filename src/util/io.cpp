#include "util/io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace fftmv::util {

namespace {

constexpr char kMagic[4] = {'F', 'M', 'V', '1'};
constexpr std::uint32_t kKindF64 = 1;

struct Header {
  char magic[4];
  std::uint32_t kind;
  std::uint64_t count;
};
static_assert(sizeof(Header) == 16);

}  // namespace

void save_vector(const std::string& path, const std::vector<double>& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_vector: cannot open " + path);
  Header h{};
  std::memcpy(h.magic, kMagic, 4);
  h.kind = kKindF64;
  h.count = data.size();
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(double)));
  if (!out) throw std::runtime_error("save_vector: write failed for " + path);
}

std::vector<double> load_vector(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_vector: cannot open " + path);
  Header h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in || std::memcmp(h.magic, kMagic, 4) != 0) {
    throw std::runtime_error("load_vector: bad header in " + path);
  }
  if (h.kind != kKindF64) {
    throw std::runtime_error("load_vector: unsupported element kind in " + path);
  }
  std::vector<double> data(h.count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(h.count * sizeof(double)));
  if (!in) throw std::runtime_error("load_vector: truncated payload in " + path);
  return data;
}

}  // namespace fftmv::util
