// Request-scoped tracing: a low-overhead, thread-safe span/counter
// recorder exported as Chrome trace-event JSON (loadable in
// chrome://tracing and Perfetto).
//
// Model: one process-global TraceSession holds a bounded ring buffer
// of events PER EMITTING THREAD (no cross-thread contention on the
// hot path — each thread locks only its own buffer, and the session
// lock is taken once per thread, at registration).  The session is
// enabled/disabled at runtime: every emission helper checks
// `enabled()` first, so with tracing compiled in but off a call site
// costs one relaxed atomic load and branch.  Call sites that build
// argument lists should guard with `if (trace::enabled())` themselves
// so the argument strings are never materialised while disabled.
//
// Ring overflow is counted, never silent: when a thread's ring is
// full the oldest event is overwritten and the buffer's dropped
// counter increments; stats() and the exported JSON's otherData both
// carry the totals.
//
// Track model (Chrome pid/tid mapping):
//   pid kHostPid   - host wall-clock tracks; tid = per-thread id
//                    assigned at first emission (set_thread_name
//                    labels the lane workers and clients).  Host
//                    timestamps are microseconds since start().
//   pid kDevicePid - simulated device-clock tracks; tid = the
//                    device::Stream's trace_tid (assigned by the
//                    scheduler per lane stream pair, -1 = untracked —
//                    phantom cost-model probes never emit).  Device
//                    timestamps are simulated seconds * 1e6, so
//                    cross-stream overlap (the pipelined apply_batch)
//                    renders as actually-overlapping spans.
//
// Event phases used: "X" complete spans, "i" instants, "C" counters,
// "b"/"e" nestable async pairs (queue-wait spans overlap freely, so
// they cannot be same-track "X" spans), "M" metadata (track names).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <type_traits>

namespace fftmv::util::trace {

/// Chrome pid of the host wall-clock tracks.
inline constexpr int kHostPid = 1;
/// Chrome pid of the simulated device-clock tracks.
inline constexpr int kDevicePid = 2;

/// One key/value argument attached to an event ("args" in the Chrome
/// schema).  Strings are JSON-escaped at export, not at emission.
struct Arg {
  enum class Kind { kString, kDouble, kInt };

  Arg(const char* k, const char* v) : key(k), str(v), kind(Kind::kString) {}
  Arg(const char* k, std::string v)
      : key(k), str(std::move(v)), kind(Kind::kString) {}
  Arg(const char* k, double v) : key(k), num(v), kind(Kind::kDouble) {}
  template <class T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  Arg(const char* k, T v)
      : key(k), inum(static_cast<std::int64_t>(v)), kind(Kind::kInt) {}

  std::string key;
  std::string str;
  double num = 0.0;
  std::int64_t inum = 0;
  Kind kind = Kind::kInt;
};

struct Stats {
  std::uint64_t events = 0;   ///< retained (exportable) events
  std::uint64_t dropped = 0;  ///< overwritten by ring overflow
};

inline constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True while a session is recording.  One relaxed load — the whole
/// cost of an instrumented call site when tracing is off.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Start (or restart) recording: clears previously recorded events,
/// resets drop counters, re-arms every thread ring at
/// `ring_capacity` events and zeroes the host clock.  Thread and
/// device track names survive restarts.
void start(std::size_t ring_capacity = kDefaultRingCapacity);
/// Stop recording.  Recorded events stay exportable until the next
/// start()/clear().
void stop();
/// Drop every recorded event and reset drop counters without
/// changing the enabled state.
void clear();

Stats stats();

/// Microseconds of host wall clock since start() (0 before the first
/// start).
double now_us();

/// Monotone id source for async span pairs.
std::uint64_t next_id();

/// Name the calling thread's host track (e.g. "lane 0").  Works while
/// disabled — names persist across start()/stop() cycles.
void set_thread_name(const std::string& name);
/// Name a simulated device-clock track (e.g. "lane 0 stream A").
/// Works while disabled; names persist across start()/stop() cycles.
void set_device_track_name(int tid, const std::string& name);

/// Emit a complete ("X") span on the caller's host track; `ts_us` and
/// `dur_us` are host microseconds (now_us()).
void complete(const char* name, const char* cat, double ts_us, double dur_us,
              std::initializer_list<Arg> args = {});
/// Emit a complete span on a simulated device-clock track;
/// `ts_seconds`/`dur_seconds` are Stream::now() values.
void complete_device(int tid, const char* name, const char* cat,
                     double ts_seconds, double dur_seconds,
                     std::initializer_list<Arg> args = {});
/// Emit an instant ("i") event on the caller's host track.
void instant(const char* name, const char* cat,
             std::initializer_list<Arg> args = {});
/// Emit a counter ("C") sample on the caller's host track.
void counter(const char* name, double value);
/// Emit a nestable async begin/end ("b"/"e") pair: spans that overlap
/// freely and may end on a different thread than they began on
/// (queue-wait spans).  Pairs match on (cat, id).
void async_begin(const char* name, const char* cat, std::uint64_t id,
                 std::initializer_list<Arg> args = {});
void async_end(const char* name, const char* cat, std::uint64_t id);

/// Export every retained event as Chrome trace-event JSON:
///   {"traceEvents": [...], "displayTimeUnit": "ms",
///    "otherData": {"event_count": N, "dropped_events": M}}
/// Metadata events (process/thread names) lead, then each thread's
/// ring in emission order.
void write_json(std::ostream& os);
/// write_json to `path`; false if the file cannot be opened.
bool write_file(const std::string& path);

/// RAII host span: records the start timestamp at construction and
/// emits one complete event at destruction.  `name`/`cat` must
/// outlive the span (string literals).  Construction while disabled
/// costs one branch and emits nothing — a session starting mid-span
/// does not emit a half-measured span either.
class Span {
 public:
  Span(const char* name, const char* cat)
      : name_(name), cat_(cat), active_(enabled()) {
    if (active_) t0_us_ = now_us();
  }
  ~Span() {
    if (active_) complete(name_, cat_, t0_us_, now_us() - t0_us_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* cat_;
  double t0_us_ = 0.0;
  bool active_;
};

}  // namespace fftmv::util::trace
