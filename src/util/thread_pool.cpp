#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/math.hpp"

namespace fftmv::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    Task* task = queue_.front();
    // Claimed under the lock, so a submitter whose wait predicate
    // (checked under this mutex) observes active == 0 can never race
    // with this worker still holding the pointer.
    task->active.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    run_task(*task);
    lock.lock();
    task->active.fetch_sub(1, std::memory_order_relaxed);
    cv_done_.notify_all();
  }
}

void ThreadPool::dequeue(Task& task) {
  std::lock_guard lock(mutex_);
  if (!task.queued) return;
  task.queued = false;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == &task) {
      queue_.erase(it);
      break;
    }
  }
}

void ThreadPool::run_task(Task& task) {
  for (;;) {
    const index_t begin = task.next.fetch_add(task.chunk, std::memory_order_relaxed);
    if (begin >= task.count) {
      // Chunks exhausted: unlink so idle workers stop picking the
      // task up (every participant passes through here, so the last
      // claimer always removes it).
      dequeue(task);
      break;
    }
    const index_t end = std::min(task.count, begin + task.chunk);
    try {
      (*task.body)(begin, end);
    } catch (...) {
      std::lock_guard lock(task.error_mutex);
      if (!task.error) task.error = std::current_exception();
    }
    if (task.remaining.fetch_sub(end - begin, std::memory_order_acq_rel) == end - begin) {
      // Lock pairs with the submitter's predicate check so the
      // completion notification cannot be missed.
      std::lock_guard lock(mutex_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(index_t count,
                                     const std::function<void(index_t, index_t)>& body) {
  if (count <= 0) return;
  const auto nthreads = static_cast<index_t>(size());
  // Small counts: run inline, skip synchronisation entirely.
  if (count == 1 || nthreads <= 1) {
    body(0, count);
    return;
  }

  Task task;
  task.body = &body;
  task.count = count;
  // ~4 chunks per worker balances load without excessive contention
  // on the shared counter.
  task.chunk = std::max<index_t>(1, ceil_div(count, nthreads * 4));
  task.remaining.store(count, std::memory_order_relaxed);

  {
    std::lock_guard lock(mutex_);
    task.queued = true;
    queue_.push_back(&task);
  }
  cv_work_.notify_all();

  // The calling thread participates too (and fully completes the task
  // by itself if every worker is busy elsewhere — this is what makes
  // nested submission from inside a task body deadlock-free).
  run_task(task);

  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] {
      return task.remaining.load(std::memory_order_acquire) == 0 &&
             task.active.load(std::memory_order_relaxed) == 0;
    });
  }
  if (task.error) std::rethrow_exception(task.error);
}

void ThreadPool::parallel_for(index_t count, const std::function<void(index_t)>& body) {
  parallel_for_chunks(count, [&](index_t begin, index_t end) {
    for (index_t i = begin; i < end; ++i) body(i);
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(index_t count, const std::function<void(index_t)>& body) {
  ThreadPool::global().parallel_for(count, body);
}

}  // namespace fftmv::util
