#include "util/rng.hpp"

#include <bit>
#include <cmath>

namespace fftmv::util {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  // Box-Muller; guard against log(0).
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double fill_low_mantissa(double x) {
  if (x == 0.0 || !std::isfinite(x)) return x;
  auto bits = std::bit_cast<std::uint64_t>(x);
  // Double mantissa: bits [0, 52).  Float keeps the top 23 mantissa
  // bits, so the low 29 bits are lost on a float cast.  Force the
  // low field to 0x0FFFFFFF — just under half a float-ULP — so the
  // cast is maximally lossy (~2^-24 relative error).  Setting *all*
  // 29 bits would leave the value one double-ULP below the next
  // float: still "unrepresentable", but the rounding error would be
  // a negligible 2^-52, silently biasing the Pareto analysis the
  // other way.
  bits = (bits & ~((std::uint64_t{1} << 29) - 1)) | ((std::uint64_t{1} << 28) - 1);
  return std::bit_cast<double>(bits);
}

void fill_uniform_unrepresentable(Rng& rng, double* dst, index_t n, double lo,
                                  double hi) {
  for (index_t i = 0; i < n; ++i) {
    dst[i] = fill_low_mantissa(rng.uniform(lo, hi));
  }
}

void fill_uniform(Rng& rng, double* dst, index_t n, double lo, double hi) {
  for (index_t i = 0; i < n; ++i) dst[i] = rng.uniform(lo, hi);
}

void fill_uniform(Rng& rng, float* dst, index_t n, float lo, float hi) {
  for (index_t i = 0; i < n; ++i) {
    dst[i] = static_cast<float>(rng.uniform(lo, hi));
  }
}

}  // namespace fftmv::util
