#include "util/aligned_buffer.hpp"

#include <cstdlib>
#include <limits>
#include <new>

namespace fftmv::util {

void* aligned_alloc_bytes(std::size_t bytes, std::size_t alignment) {
  if (bytes == 0) return nullptr;
  // Guard against size computations that overflowed upstream; a
  // request larger than half the address space is always a bug.
  if (bytes > std::numeric_limits<std::size_t>::max() / 2) {
    throw std::bad_alloc();
  }
  // std::aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (bytes + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void aligned_free_bytes(void* p) noexcept { std::free(p); }

}  // namespace fftmv::util
