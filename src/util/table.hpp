// ASCII table writer used by the benchmark harnesses to print the
// rows/series behind each paper figure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fftmv::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Helpers for common cell formats.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_pct(double fraction, int precision = 1);
  static std::string fmt_sci(double v, int precision = 2);

  /// Render with column alignment and a header rule.
  void print(std::ostream& os) const;

  /// Render as a JSON object: {"headers": [...], "rows": [[...]]}.
  /// Cells stay strings (they already carry units/format); consumers
  /// of the CI perf artifact parse the numeric columns they track.
  void print_json(std::ostream& os) const;

  /// JSON string escaping (quotes, backslashes, control chars).
  static std::string json_escape(const std::string& s);

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fftmv::util
