// Deterministic random number generation and the paper's
// mantissa-filling initialisation.
//
// Paper §4.2.1: "we initialized the matrices and vectors with
// double-precision floating point values that cannot be accurately
// represented as single-precision floating point numbers.  This was
// done by setting mantissa bits in positions greater than 23 to one."
// Without that step, a single-precision broadcast of representable
// values incurs zero error and biases the Pareto analysis.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace fftmv::util {

/// SplitMix64: tiny, fast, solid statistical quality for test/bench
/// data generation; fully deterministic across platforms (unlike
/// std::uniform_real_distribution, whose output is
/// implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

 private:
  std::uint64_t state_;
};

/// Force all mantissa bits below single precision (positions > 23,
/// i.e. the low 29 explicit bits of the double mantissa) to one, so
/// the value is guaranteed to be unrepresentable in float.  Preserves
/// sign and exponent; zero and non-finite values pass through.
double fill_low_mantissa(double x);

/// Fill `n` doubles with uniform values in [lo, hi) whose low mantissa
/// bits are forced on (see fill_low_mantissa).
void fill_uniform_unrepresentable(Rng& rng, double* dst, index_t n,
                                  double lo = -1.0, double hi = 1.0);

/// Plain uniform fill (values may be float-representable).
void fill_uniform(Rng& rng, double* dst, index_t n, double lo = -1.0,
                  double hi = 1.0);
void fill_uniform(Rng& rng, float* dst, index_t n, float lo = -1.0f,
                  float hi = 1.0f);

}  // namespace fftmv::util
