// Wall-clock timing and repetition statistics.
//
// The FFTMatvec executable reports mean/min/max timings over 100
// repetitions per phase (paper, Artifact Description); StatAccumulator
// provides those summaries for both wall-clock and simulated times.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

namespace fftmv::util {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed seconds since construction/restart.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Streaming min/max/mean/stddev over an arbitrary number of samples.
class StatAccumulator {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum_sq_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  long long count() const { return n_; }
  double mean() const { return n_ > 0 ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  double stddev() const {
    if (n_ < 2) return 0.0;
    const double m = mean();
    const double var = sum_sq_ / static_cast<double>(n_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

  void reset() { *this = StatAccumulator{}; }

 private:
  long long n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace fftmv::util
