// Common scalar and index types shared by every fftmv module.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace fftmv {

/// Signed index type used for extents and loop counters.  Signed so
/// that reverse loops and differences are well-defined (Core
/// Guidelines ES.100-ES.107); wide enough for multi-billion-element
/// global problem sizes (the paper runs N_m * N_t > 2e10).
using index_t = std::int64_t;

using cfloat = std::complex<float>;
using cdouble = std::complex<double>;

/// Machine epsilons used throughout the error analysis (paper §3.2.1).
inline constexpr double kEpsSingle = 1.1920928955078125e-07;  // 2^-23
inline constexpr double kEpsDouble = 2.220446049250313e-16;   // 2^-52

/// Traits mapping a (possibly complex) scalar to its real type and
/// reporting whether it is complex.  Used by kernels templated over
/// the four datatypes the paper's SBGEMV supports (float, double,
/// complex float, complex double).
template <class T>
struct scalar_traits {
  using real_type = T;
  static constexpr bool is_complex = false;
};

template <class R>
struct scalar_traits<std::complex<R>> {
  using real_type = R;
  static constexpr bool is_complex = true;
};

template <class T>
using real_t = typename scalar_traits<T>::real_type;

template <class T>
inline constexpr bool is_complex_v = scalar_traits<T>::is_complex;

/// conj() that is the identity for real scalars, so kernels can be
/// written once for the transpose and conjugate-transpose cases.
template <class T>
constexpr T conj_if_complex(const T& x) {
  if constexpr (is_complex_v<T>) {
    return std::conj(x);
  } else {
    return x;
  }
}

}  // namespace fftmv
