// Rank-failure signalling for sharded execution.
//
// DistributedMatvecPlan consults the device's FaultPlan at its entry
// collective sync and throws RankFailure when a rank of the group is
// down.  The throw happens before any compute or communication is
// charged, so the serve layer can re-dispatch the whole batch on the
// single-rank fallback path with bit-identical results.
#pragma once

#include <stdexcept>
#include <string>

#include "util/types.hpp"

namespace fftmv::comm {

/// A rank of a sharded group was unreachable at a collective sync
/// point.  Not retryable on the sharded path while the outage lasts;
/// callers degrade to the single-rank path instead.
class RankFailure : public std::runtime_error {
 public:
  RankFailure(index_t rank, index_t ranks)
      : std::runtime_error("rank " + std::to_string(rank) + " of " +
                           std::to_string(ranks) +
                           " failed at a collective sync point"),
        rank_(rank),
        ranks_(ranks) {}

  index_t rank() const { return rank_; }
  index_t ranks() const { return ranks_; }

 private:
  index_t rank_;
  index_t ranks_;
};

}  // namespace fftmv::comm
