// Pairwise-tree summation shared by the thread communicator and the
// lockstep cluster, so both reduction paths combine rank
// contributions in the identical ((r0+r1)+(r2+r3))+... order — the
// log2(p)-depth rounding behaviour assumed by the paper's error
// analysis (§3.2.1) and required for bit-identical results between
// the threaded and sequential distributed backends.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace fftmv::comm {

template <class T>
T tree_sum_element(const T* const* src, index_t q, index_t i) {
  if (q == 1) return src[0][i];
  const index_t half = (q + 1) / 2;
  return tree_sum_element(src, half, i) + tree_sum_element(src + half, q - half, i);
}

/// dst[i] = pairwise-tree sum over contributions[r][i].
template <class T>
void tree_reduce(const std::vector<const T*>& contributions, T* dst,
                 index_t count) {
  const auto q = static_cast<index_t>(contributions.size());
  for (index_t i = 0; i < count; ++i) {
    dst[i] = tree_sum_element(contributions.data(), q, i);
  }
}

}  // namespace fftmv::comm
