#include "comm/partitioner.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/math.hpp"

namespace fftmv::comm {

PartitionCost evaluate_partition(const PartitionProblem& prob, index_t p_rows,
                                 index_t p_cols, const CommCostModel& net) {
  PartitionCost cost;
  cost.p_rows = p_rows;
  cost.p_cols = p_cols;

  const double sb = static_cast<double>(prob.scalar_bytes);
  // Local parameter chunk: (n_m / p_c) x n_t scalars; local data
  // chunk: (n_d / p_r) x n_t scalars.
  const double bytes_m = static_cast<double>(util::ceil_div(prob.n_m, p_cols)) *
                         static_cast<double>(prob.n_t) * sb;
  const double bytes_d = static_cast<double>(util::ceil_div(prob.n_d, p_rows)) *
                         static_cast<double>(prob.n_t) * sb;

  const bool col_intra = p_rows <= net.spec().node_size;
  // Grid rows stride across columns, so row collectives cross nodes
  // as soon as the grid has more than one column per node.
  const bool row_intra = p_cols <= 1;

  cost.forward_comm_s = net.broadcast_time(p_rows, bytes_m, col_intra) +
                        net.reduce_time(p_cols, bytes_d, row_intra);
  cost.adjoint_comm_s = net.broadcast_time(p_cols, bytes_d, row_intra) +
                        net.reduce_time(p_rows, bytes_m, col_intra);

  // Every rank of a column computes the FFT of the same m_c chunk:
  // p_r > 1 multiplies that phase's memory traffic.  Model the padded
  // transform working set (2 n_t complex scalars per spatial point,
  // ~2 memory passes).
  const double fft_bytes_per_rank =
      static_cast<double>(util::ceil_div(prob.n_m, p_cols)) *
      static_cast<double>(2 * prob.n_t) * sb * 2.0 * 2.0;
  const double fft_once =
      static_cast<double>(util::ceil_div(prob.n_m, p_cols * p_rows)) *
      static_cast<double>(2 * prob.n_t) * sb * 2.0 * 2.0;
  cost.duplicated_fft_s =
      (fft_bytes_per_rank - fft_once) / prob.device_bandwidth_Bps;

  return cost;
}

std::vector<PartitionCost> enumerate_partitions(const PartitionProblem& prob,
                                                index_t p,
                                                const CommCostModel& net) {
  if (p <= 0) throw std::invalid_argument("enumerate_partitions: p must be positive");
  std::vector<PartitionCost> out;
  for (index_t p_rows : util::divisors(p)) {
    if (p_rows > prob.n_d) break;  // every grid row must own a sensor
    out.push_back(evaluate_partition(prob, p_rows, p / p_rows, net));
  }
  return out;
}

PartitionCost choose_partition(const PartitionProblem& prob, index_t p,
                               const CommCostModel& net) {
  const auto candidates = enumerate_partitions(prob, p, net);
  return *std::min_element(candidates.begin(), candidates.end(),
                           [](const PartitionCost& a, const PartitionCost& b) {
                             return a.total() < b.total();
                           });
}

}  // namespace fftmv::comm
