// Alpha-beta collective cost model for the simulated interconnect.
//
// Substitute for RCCL on Frontier's Slingshot fabric (DESIGN.md §1).
// Collectives are modelled as log2(q)-stage trees with
//
//   T = alpha_call + stages * (alpha_stage(q) + small-message wire time)
//       [+ pipelined wire time for large messages]
//
// where alpha_stage grows superlinearly with the group size q —
// the contention/straggler behaviour that makes very wide
// small-message collectives expensive at scale and motivates the
// communication-aware 2-D partitioning (paper §4.2.2: >3x speedup at
// 4,096 GPUs).  Large messages are chunk-pipelined, so their wire
// time is paid once; messages that stay inside one node use the
// faster intra-node fabric.
#pragma once

#include "util/types.hpp"

namespace fftmv::comm {

struct NetworkSpec {
  /// GPUs per node (Frontier: 8 GCDs).
  index_t node_size = 8;
  /// Fixed software cost of issuing one collective.
  double alpha_call_s = 250e-6;
  /// Per-stage base latency.
  double alpha_stage_s = 20e-6;
  /// Contention/straggler term: alpha_stage += scale * q.  Wide
  /// collectives across thousands of endpoints pay per-stage costs
  /// that grow with the group size (congestion, jitter, stragglers) —
  /// the effect that makes the naive 1 x p grid lose at scale
  /// (§4.2.2: >3x from communication-aware partitioning at 4,096
  /// GPUs).
  double alpha_contention_s = 0.75e-6;
  /// Per-GCD share of the node injection bandwidth (Frontier: 4 x
  /// 25 GB/s NICs across 8 GCDs), used for un-pipelined tree stages.
  double gcd_bandwidth_Bps = 12.5e9;
  /// Full-node injection bandwidth for pipelined large transfers.
  double node_bandwidth_Bps = 100e9;
  /// Intra-node (Infinity Fabric) bandwidth.
  double intra_bandwidth_Bps = 100e9;

  static NetworkSpec frontier() { return NetworkSpec{}; }

  bool operator==(const NetworkSpec&) const = default;
};

class CommCostModel {
 public:
  explicit CommCostModel(NetworkSpec spec) : spec_(spec) {}

  const NetworkSpec& spec() const { return spec_; }

  /// Tree broadcast of `bytes` over `q` ranks.  `within_node` marks
  /// groups whose ranks are contiguous inside one node.
  double broadcast_time(index_t q, double bytes, bool within_node) const;

  /// Tree reduction; slightly heavier per stage than a broadcast
  /// (arithmetic on arrival).
  double reduce_time(index_t q, double bytes, bool within_node) const;

  /// Reduce followed by broadcast (the model's allreduce).
  double allreduce_time(index_t q, double bytes, bool within_node) const;

 private:
  double collective_time(index_t q, double bytes, bool within_node,
                         double stage_factor) const;

  NetworkSpec spec_;
};

}  // namespace fftmv::comm
