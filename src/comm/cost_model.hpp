// Alpha-beta collective cost model for the simulated interconnect.
//
// Substitute for RCCL on Frontier's Slingshot fabric (DESIGN.md §1).
// Collectives are modelled as log2(q)-stage trees with
//
//   T = alpha_call + stages * (alpha_stage(q) + small-message wire time)
//       [+ pipelined wire time for large messages]
//
// where alpha_stage grows superlinearly with the group size q —
// the contention/straggler behaviour that makes very wide
// small-message collectives expensive at scale and motivates the
// communication-aware 2-D partitioning (paper §4.2.2: >3x speedup at
// 4,096 GPUs).  Large messages are chunk-pipelined, so their wire
// time is paid once; messages that stay inside one node use the
// faster intra-node fabric.
#pragma once

#include "util/types.hpp"

namespace fftmv::comm {

struct NetworkSpec {
  /// GPUs per node (Frontier: 8 GCDs).
  index_t node_size = 8;
  /// Fixed software cost of issuing one collective.
  double alpha_call_s = 250e-6;
  /// Per-stage base latency.
  double alpha_stage_s = 20e-6;
  /// Contention/straggler term: alpha_stage += scale * q.  Wide
  /// collectives across thousands of endpoints pay per-stage costs
  /// that grow with the group size (congestion, jitter, stragglers) —
  /// the effect that makes the naive 1 x p grid lose at scale
  /// (§4.2.2: >3x from communication-aware partitioning at 4,096
  /// GPUs).
  double alpha_contention_s = 0.75e-6;
  /// Per-GCD share of the node injection bandwidth (Frontier: 4 x
  /// 25 GB/s NICs across 8 GCDs), used for un-pipelined tree stages.
  double gcd_bandwidth_Bps = 12.5e9;
  /// Full-node injection bandwidth for pipelined large transfers.
  double node_bandwidth_Bps = 100e9;
  /// Intra-node (Infinity Fabric) bandwidth.
  double intra_bandwidth_Bps = 100e9;

  static NetworkSpec frontier() { return NetworkSpec{}; }

  bool operator==(const NetworkSpec&) const = default;
};

/// The two collectives of one distributed matvec: input broadcast and
/// partial-output reduction (or output gather, for 1-D rank groups).
struct MatvecCollectives {
  double broadcast_s = 0.0;
  double reduce_s = 0.0;
  double total() const { return broadcast_s + reduce_s; }
};

class CommCostModel {
 public:
  explicit CommCostModel(NetworkSpec spec) : spec_(spec) {}

  const NetworkSpec& spec() const { return spec_; }

  /// Tree broadcast of `bytes` over `q` ranks.  `within_node` marks
  /// groups whose ranks are contiguous inside one node.
  double broadcast_time(index_t q, double bytes, bool within_node) const;

  /// Tree reduction; slightly heavier per stage than a broadcast
  /// (arithmetic on arrival).
  double reduce_time(index_t q, double bytes, bool within_node) const;

  /// Reduce followed by broadcast (the model's allreduce).
  double allreduce_time(index_t q, double bytes, bool within_node) const;

  /// Collective cost of one matvec on a p_rows x p_cols grid — THE
  /// single source of truth for the grid's comm terms, shared by the
  /// distributed FftMatvecPlan apply and the fig4/serve scaling
  /// harnesses (duplicating the node-contiguity rules or the alpha-
  /// beta constants in a caller is a bug).  Forward broadcasts the
  /// input over the grid column (p_rows ranks) and reduces partial
  /// outputs over the grid row (p_cols ranks); the adjoint mirrors
  /// the roles.  Node contiguity under the column-major rank
  /// numbering (ProcessGrid): column groups are contiguous, so they
  /// sit inside one node iff p_rows <= node_size; row groups are
  /// strided by p_rows and contiguous only on a single-row grid.
  MatvecCollectives matvec_collectives(index_t p_rows, index_t p_cols,
                                       bool adjoint, double bcast_bytes,
                                       double reduce_bytes) const;

  /// Collective cost of one sharded serving apply on a contiguous
  /// group of `q` ranks (the 1-D output partition of serve's rank-
  /// group placement): broadcast of the whole payload to every rank,
  /// then a tree gather of the disjoint per-rank output slices,
  /// charged at the (slightly heavier) reduce tariff.  A contiguous
  /// group sits inside one node iff q <= node_size.
  MatvecCollectives rank_group_collectives(index_t q, double bcast_bytes,
                                           double gather_bytes) const;

 private:
  double collective_time(index_t q, double bytes, bool within_node,
                         double stage_factor) const;

  NetworkSpec spec_;
};

}  // namespace fftmv::comm
