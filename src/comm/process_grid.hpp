// 2-D processor grid (paper §2.4): p = p_r * p_c ranks arranged so
// that grid rows partition the sensor dimension (N_d) and grid
// columns partition the parameter dimension (N_m).
//
// Ranks are numbered column-major, so the p_r ranks of one grid
// column are contiguous; on a Frontier-like machine with 8 GPUs per
// node this keeps the large per-column broadcast/reduce traffic
// inside a node whenever p_r <= node size — the locality the
// communication-aware partitioner exploits.
#pragma once

#include <stdexcept>

#include "util/types.hpp"

namespace fftmv::comm {

class ProcessGrid {
 public:
  ProcessGrid(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    if (rows <= 0 || cols <= 0) {
      throw std::invalid_argument("ProcessGrid: dimensions must be positive");
    }
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }

  index_t rank_of(index_t row, index_t col) const {
    check_coord(row, col);
    return col * rows_ + row;
  }

  index_t row_of(index_t rank) const { return rank % rows_; }
  index_t col_of(index_t rank) const { return rank / rows_; }

  /// True when a grid column's ranks all live inside one node of
  /// `node_size` GPUs (contiguous column-major numbering).
  bool column_within_node(index_t node_size) const { return rows_ <= node_size; }

 private:
  void check_coord(index_t row, index_t col) const {
    if (row < 0 || row >= rows_ || col < 0 || col >= cols_) {
      throw std::out_of_range("ProcessGrid: coordinate out of range");
    }
  }

  index_t rows_;
  index_t cols_;
};

}  // namespace fftmv::comm
