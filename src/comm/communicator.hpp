// In-process thread-backed communicator.
//
// Substitute for NCCL/RCCL + MPI (DESIGN.md §1): each logical rank
// runs on its own thread and the collectives move real data through
// shared memory, so distributed-algorithm *numerics* (reduction
// order, partition-dependent rounding) are exercised for real.
// Simulated communication *time* is charged separately via
// CommCostModel by the callers.
//
// Reductions combine rank contributions in a fixed pairwise-tree
// order, matching the log2(p) tree depth assumed by the paper's
// error analysis (§3.2.1) and keeping runs bit-reproducible.
#pragma once

#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "comm/tree_reduce.hpp"
#include "util/types.hpp"

namespace fftmv::comm {

/// Rendezvous point shared by the ranks of one group: a
/// sense-reversing barrier plus a pointer slot per rank.
class Hub {
 public:
  explicit Hub(index_t size);

  index_t size() const { return size_; }

  void barrier();

  void publish(index_t rank, const void* p) {
    slots_[static_cast<std::size_t>(rank)].store(const_cast<void*>(p),
                                                 std::memory_order_release);
  }

  void* slot(index_t rank) const {
    return slots_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
  }

 private:
  index_t size_;
  std::vector<std::atomic<void*>> slots_;
  std::atomic<index_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

/// Rank-local handle to a group; provides the collectives.
class GroupComm {
 public:
  GroupComm() = default;
  GroupComm(std::shared_ptr<Hub> hub, index_t rank) : hub_(std::move(hub)), rank_(rank) {}

  index_t rank() const { return rank_; }
  index_t size() const { return hub_ ? hub_->size() : 1; }
  bool valid() const { return hub_ != nullptr; }

  void barrier() {
    if (hub_) hub_->barrier();
  }

  /// In-place broadcast of count elements from root.
  template <class T>
  void broadcast(T* data, index_t count, index_t root = 0) {
    if (size() <= 1) return;
    hub_->publish(rank_, data);
    hub_->barrier();
    if (rank_ != root) {
      const T* src = static_cast<const T*>(hub_->slot(root));
      std::memcpy(data, src, static_cast<std::size_t>(count) * sizeof(T));
    }
    hub_->barrier();
  }

  /// Sum-reduction to root in pairwise-tree order: contributions are
  /// combined as ((r0+r1)+(r2+r3))+... — log2(p) rounding depth.
  template <class T>
  void reduce_sum(const T* send, T* recv, index_t count, index_t root = 0) {
    if (size() <= 1) {
      if (send != recv) std::memcpy(recv, send, static_cast<std::size_t>(count) * sizeof(T));
      return;
    }
    hub_->publish(rank_, send);
    hub_->barrier();
    if (rank_ == root) {
      const index_t q = size();
      std::vector<const T*> src(static_cast<std::size_t>(q));
      for (index_t r = 0; r < q; ++r) {
        src[static_cast<std::size_t>(r)] = static_cast<const T*>(hub_->slot(r));
      }
      tree_reduce(src, recv, count);
    }
    hub_->barrier();
  }

  /// Reduce to rank 0 then broadcast (tree order preserved).
  template <class T>
  void allreduce_sum(const T* send, T* recv, index_t count) {
    reduce_sum(send, recv, count, 0);
    broadcast(recv, count, 0);
  }

 private:
  std::shared_ptr<Hub> hub_;
  index_t rank_ = 0;
};

/// Per-rank view of the full machine: the world group plus the grid
/// row and column subgroups used by the distributed matvec.
struct RankComms {
  index_t world_rank = 0;
  GroupComm world;
  GroupComm grid_row;  ///< ranks sharing this rank's grid row (size p_c)
  GroupComm grid_col;  ///< ranks sharing this rank's grid column (size p_r)
};

/// Spawn `p_rows * p_cols` rank threads, build world/row/column
/// groups, and run `body(RankComms&)` on every rank.  The first
/// exception thrown by any rank is rethrown on the caller.
void run_on_grid(index_t p_rows, index_t p_cols,
                 const std::function<void(RankComms&)>& body);

}  // namespace fftmv::comm
