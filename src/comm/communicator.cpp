#include "comm/communicator.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "comm/process_grid.hpp"

namespace fftmv::comm {

Hub::Hub(index_t size)
    : size_(size), slots_(static_cast<std::size_t>(size)) {
  if (size <= 0) throw std::invalid_argument("Hub: size must be positive");
  for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
}

void Hub::barrier() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == size_) {
    arrived_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_acq_rel);
    generation_.notify_all();
  } else {
    std::uint64_t cur = generation_.load(std::memory_order_acquire);
    while (cur == gen) {
      generation_.wait(cur, std::memory_order_acquire);
      cur = generation_.load(std::memory_order_acquire);
    }
  }
}

void run_on_grid(index_t p_rows, index_t p_cols,
                 const std::function<void(RankComms&)>& body) {
  const ProcessGrid grid(p_rows, p_cols);
  const index_t p = grid.size();

  auto world_hub = std::make_shared<Hub>(p);
  std::vector<std::shared_ptr<Hub>> row_hubs, col_hubs;
  row_hubs.reserve(static_cast<std::size_t>(p_rows));
  col_hubs.reserve(static_cast<std::size_t>(p_cols));
  for (index_t r = 0; r < p_rows; ++r) row_hubs.push_back(std::make_shared<Hub>(p_cols));
  for (index_t c = 0; c < p_cols; ++c) col_hubs.push_back(std::make_shared<Hub>(p_rows));

  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (index_t rank = 0; rank < p; ++rank) {
    threads.emplace_back([&, rank] {
      RankComms comms;
      comms.world_rank = rank;
      comms.world = GroupComm(world_hub, rank);
      const index_t row = grid.row_of(rank);
      const index_t col = grid.col_of(rank);
      // Within its grid row the rank is indexed by its column and
      // vice versa.
      comms.grid_row = GroupComm(row_hubs[static_cast<std::size_t>(row)], col);
      comms.grid_col = GroupComm(col_hubs[static_cast<std::size_t>(col)], row);
      try {
        body(comms);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fftmv::comm
