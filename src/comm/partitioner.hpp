// Communication-aware partitioning (paper §2.4, citing §3.7 of the
// FFTMatvec algorithm paper [44]).
//
// Given the problem size, the number of GPUs, and the machine
// parameters, choose the 2-D grid shape (p_r x p_c) minimising the
// modelled per-matvec cost.  The trade encoded here:
//
//   * F matvec: broadcast of the local parameter chunk over the p_r
//     ranks of a grid column (bytes grow ~ p_r) + reduction of the
//     local data chunk over the p_c ranks of a grid row;
//   * F* matvec: the mirror image;
//   * p_r > 1 duplicates the parameter-side FFT work across the
//     column (every rank transforms the same m_c), so a compute term
//     penalises extra rows;
//   * column-contiguous rank numbering keeps the large column
//     collectives inside a node while p_r <= node size.
//
// At small p the wide reductions are cheap and (1, p) wins; at very
// large p the superlinear contention of wide collectives makes
// multi-row grids pay off — the paper used 1 row up to 512 GPUs,
// 8 rows at 1,024-2,048 and 16 rows at 4,096 on Frontier.
#pragma once

#include <vector>

#include "comm/cost_model.hpp"
#include "comm/process_grid.hpp"
#include "util/types.hpp"

namespace fftmv::comm {

struct PartitionProblem {
  index_t n_m = 0;  ///< global spatial parameter count
  index_t n_d = 0;  ///< sensor count
  index_t n_t = 0;  ///< time steps
  /// Bytes per scalar moved in phase 1/5 buffers (8 double, 4 single).
  index_t scalar_bytes = 8;
  /// Effective device streaming bandwidth, for the duplicated-FFT
  /// compute penalty (B/s).
  double device_bandwidth_Bps = 1.1e12;
};

struct PartitionCost {
  index_t p_rows = 1;
  index_t p_cols = 1;
  double forward_comm_s = 0.0;   ///< F matvec: bcast(p_r) + reduce(p_c)
  double adjoint_comm_s = 0.0;   ///< F* matvec: bcast(p_c) + reduce(p_r)
  double duplicated_fft_s = 0.0; ///< extra parameter-FFT work when p_r > 1
  double total() const {
    return forward_comm_s + adjoint_comm_s + duplicated_fft_s;
  }
};

/// Modelled cost of one grid shape.
PartitionCost evaluate_partition(const PartitionProblem& prob, index_t p_rows,
                                 index_t p_cols, const CommCostModel& net);

/// All candidate shapes (p_r runs over divisors of p with p_r <= n_d,
/// so every grid row owns at least one sensor).
std::vector<PartitionCost> enumerate_partitions(const PartitionProblem& prob,
                                                index_t p,
                                                const CommCostModel& net);

/// The communication-aware choice: argmin of total() over candidates.
PartitionCost choose_partition(const PartitionProblem& prob, index_t p,
                               const CommCostModel& net);

}  // namespace fftmv::comm
