#include "comm/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"

namespace fftmv::comm {

double CommCostModel::collective_time(index_t q, double bytes, bool within_node,
                                      double stage_factor) const {
  if (q <= 1) return 0.0;
  const double stages = std::ceil(std::log2(static_cast<double>(q)));
  const double alpha_stage =
      (spec_.alpha_stage_s + spec_.alpha_contention_s * static_cast<double>(q)) *
      stage_factor;

  // Wire time: the library picks the better of the un-pipelined tree
  // (message traverses every stage) and the chunk-pipelined algorithm
  // (one pass over the slowest link), like RCCL's algorithm choice;
  // min() keeps the model continuous in the message size.
  const double unpipelined = stages * bytes / spec_.gcd_bandwidth_Bps;
  const double pipelined =
      within_node ? bytes / spec_.intra_bandwidth_Bps
                  : bytes / spec_.node_bandwidth_Bps +
                        bytes / spec_.intra_bandwidth_Bps;
  return spec_.alpha_call_s + stages * alpha_stage +
         std::min(unpipelined, pipelined);
}

double CommCostModel::broadcast_time(index_t q, double bytes,
                                     bool within_node) const {
  return collective_time(q, bytes, within_node, 1.0);
}

double CommCostModel::reduce_time(index_t q, double bytes,
                                  bool within_node) const {
  return collective_time(q, bytes, within_node, 1.15);
}

double CommCostModel::allreduce_time(index_t q, double bytes,
                                     bool within_node) const {
  return reduce_time(q, bytes, within_node) +
         broadcast_time(q, bytes, within_node) - spec_.alpha_call_s;
}

}  // namespace fftmv::comm
