#include "comm/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"

namespace fftmv::comm {

double CommCostModel::collective_time(index_t q, double bytes, bool within_node,
                                      double stage_factor) const {
  if (q <= 1) return 0.0;
  const double stages = std::ceil(std::log2(static_cast<double>(q)));
  const double alpha_stage =
      (spec_.alpha_stage_s + spec_.alpha_contention_s * static_cast<double>(q)) *
      stage_factor;

  // Wire time: the library picks the better of the un-pipelined tree
  // (message traverses every stage) and the chunk-pipelined algorithm
  // (one pass over the slowest link), like RCCL's algorithm choice;
  // min() keeps the model continuous in the message size.
  const double unpipelined = stages * bytes / spec_.gcd_bandwidth_Bps;
  const double pipelined =
      within_node ? bytes / spec_.intra_bandwidth_Bps
                  : bytes / spec_.node_bandwidth_Bps +
                        bytes / spec_.intra_bandwidth_Bps;
  return spec_.alpha_call_s + stages * alpha_stage +
         std::min(unpipelined, pipelined);
}

double CommCostModel::broadcast_time(index_t q, double bytes,
                                     bool within_node) const {
  return collective_time(q, bytes, within_node, 1.0);
}

double CommCostModel::reduce_time(index_t q, double bytes,
                                  bool within_node) const {
  return collective_time(q, bytes, within_node, 1.15);
}

double CommCostModel::allreduce_time(index_t q, double bytes,
                                     bool within_node) const {
  return reduce_time(q, bytes, within_node) +
         broadcast_time(q, bytes, within_node) - spec_.alpha_call_s;
}

MatvecCollectives CommCostModel::matvec_collectives(index_t p_rows,
                                                    index_t p_cols,
                                                    bool adjoint,
                                                    double bcast_bytes,
                                                    double reduce_bytes) const {
  const bool col_intra = p_rows <= spec_.node_size;
  const bool row_intra = p_rows == 1 && p_cols <= spec_.node_size;
  MatvecCollectives c;
  if (!adjoint) {
    c.broadcast_s = broadcast_time(p_rows, bcast_bytes, col_intra);
    c.reduce_s = reduce_time(p_cols, reduce_bytes, row_intra);
  } else {
    c.broadcast_s = broadcast_time(p_cols, bcast_bytes, row_intra);
    c.reduce_s = reduce_time(p_rows, reduce_bytes, col_intra);
  }
  return c;
}

MatvecCollectives CommCostModel::rank_group_collectives(
    index_t q, double bcast_bytes, double gather_bytes) const {
  const bool intra = q <= spec_.node_size;
  return MatvecCollectives{broadcast_time(q, bcast_bytes, intra),
                           reduce_time(q, gather_bytes, intra)};
}

}  // namespace fftmv::comm
