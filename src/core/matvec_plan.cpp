#include "core/matvec_plan.hpp"

#include <stdexcept>

#include "core/error_model.hpp"
#include "precision/convert.hpp"
#include "util/trace.hpp"

namespace fftmv::core {

using precision::Precision;
using precision::PrecisionConfig;

PhaseTimings& PhaseTimings::operator+=(const PhaseTimings& o) {
  pad += o.pad;
  fft += o.fft;
  sbgemv += o.sbgemv;
  ifft += o.ifft;
  unpad += o.unpad;
  comm += o.comm;
  makespan += o.makespan;
  return *this;
}

PhaseTimings& PhaseTimings::operator*=(double s) {
  pad *= s;
  fft *= s;
  sbgemv *= s;
  ifft *= s;
  unpad *= s;
  comm *= s;
  makespan *= s;
  return *this;
}

template <class T>
T* FftMatvecPlan::DualReal::get(device::Device& dev, index_t n) {
  if constexpr (std::is_same_v<T, double>) {
    if (!d || d->size() < n) d.emplace(dev, n);
    return d->data();
  } else {
    static_assert(std::is_same_v<T, float>, "DualReal holds float/double");
    if (!f || f->size() < n) f.emplace(dev, n);
    return f->data();
  }
}

template <class T>
T* FftMatvecPlan::DualComplex::get(device::Device& dev, index_t n) {
  if constexpr (std::is_same_v<T, cdouble>) {
    if (!d || d->size() < n) d.emplace(dev, n);
    return d->data();
  } else {
    static_assert(std::is_same_v<T, cfloat>, "DualComplex holds cfloat/cdouble");
    if (!f || f->size() < n) f.emplace(dev, n);
    return f->data();
  }
}

FftMatvecPlan::FftMatvecPlan(device::Device& dev, device::Stream& stream,
                             const LocalDims& dims, MatvecOptions options)
    : dev_(&dev), stream_(&stream), dims_(dims), options_(options) {
  dims_.global.validate();
}

namespace {

/// Invoke fn(SrcTag{}, DstTag{}) with float/double value tags for the
/// given precision pair.
template <class Fn>
void dispatch2(Precision src, Precision dst, Fn&& fn) {
  if (src == Precision::kDouble) {
    if (dst == Precision::kDouble) {
      fn(double{}, double{});
    } else {
      fn(double{}, float{});
    }
  } else {
    if (dst == Precision::kDouble) {
      fn(float{}, double{});
    } else {
      fn(float{}, float{});
    }
  }
}

template <class Fn>
void dispatch1(Precision p, Fn&& fn) {
  if (p == Precision::kDouble) {
    fn(double{});
  } else {
    fn(float{});
  }
}

index_t scalar_width(Precision p) {
  return p == Precision::kSingle ? 4 : 8;
}

}  // namespace

void FftMatvecPlan::forward(const BlockToeplitzOperator& op,
                            std::span<const double> m, std::span<double> d,
                            const PrecisionConfig& config,
                            comm::RankComms* comms) {
  apply(op, m, d, config, comms, /*adjoint=*/false);
}

void FftMatvecPlan::adjoint(const BlockToeplitzOperator& op,
                            std::span<const double> d, std::span<double> m,
                            const PrecisionConfig& config,
                            comm::RankComms* comms) {
  apply(op, d, m, config, comms, /*adjoint=*/true);
}

void FftMatvecPlan::forward_partial(const BlockToeplitzOperator& op,
                                    std::span<const double> m,
                                    const PartialSink& sink,
                                    const PrecisionConfig& config) {
  apply(op, m, {}, config, nullptr, /*adjoint=*/false, &sink);
}

void FftMatvecPlan::adjoint_partial(const BlockToeplitzOperator& op,
                                    std::span<const double> d,
                                    const PartialSink& sink,
                                    const PrecisionConfig& config) {
  apply(op, d, {}, config, nullptr, /*adjoint=*/true, &sink);
}

void FftMatvecPlan::apply(const BlockToeplitzOperator& op,
                          std::span<const double> in, std::span<double> out,
                          const PrecisionConfig& config, comm::RankComms* comms,
                          bool adjoint, const PartialSink* partial) {
  const Precision p1 = config.phase(precision::kPhasePad);
  const Precision p2 = config.phase(precision::kPhaseFft);
  const Precision p3 = config.phase(precision::kPhaseSbgemv);
  const Precision p4 = config.phase(precision::kPhaseIfft);
  const Precision p5 = config.phase(precision::kPhaseUnpad);

  const index_t nt = dims_.n_t();
  const index_t L = dims_.padded_length();
  const index_t nf = dims_.num_frequencies();
  const index_t ns_in = adjoint ? dims_.n_d_local : dims_.n_m_local;
  const index_t ns_out = adjoint ? dims_.n_m_local : dims_.n_d_local;

  comm::GroupComm* bcast_group = nullptr;
  comm::GroupComm* reduce_group = nullptr;
  comm::MatvecCollectives coll;  // zero until a grid is attached
  if (comms != nullptr) {
    if (dev_->phantom()) {
      throw std::logic_error("distributed apply is not supported on a phantom device");
    }
    const index_t p_rows = comms->grid_col.size();
    const index_t p_cols = comms->grid_row.size();
    if (!adjoint) {
      bcast_group = &comms->grid_col;
      reduce_group = &comms->grid_row;
    } else {
      bcast_group = &comms->grid_row;
      reduce_group = &comms->grid_col;
    }
    // Grid locality and the alpha-beta terms live in the cost model —
    // the single source of truth shared with the fig4/serve scaling
    // harnesses and the serving layer's sharded dispatch.
    const comm::CommCostModel net(options_.network);
    coll = net.matvec_collectives(
        p_rows, p_cols, adjoint,
        static_cast<double>(nt * ns_in) * static_cast<double>(scalar_width(p1)),
        static_cast<double>(nt * ns_out) *
            static_cast<double>(scalar_width(p5)));
  }

  if (!dev_->phantom()) {
    const bool is_bcast_root = bcast_group == nullptr || bcast_group->rank() == 0;
    if (is_bcast_root && static_cast<index_t>(in.size()) != nt * ns_in) {
      throw std::invalid_argument("matvec: input span has wrong extent on root");
    }
  }

  timings_ = PhaseTimings{};
  rhs_timings_.clear();
  ++executions_;
  const bool fuse = options_.fuse_casts;

  // ---- Phase 1: broadcast staging + fused transpose/pad/cast ----
  double t0 = stream_->now();
  const void* phase1_src = nullptr;  // typed via p1
  dispatch1(p1, [&](auto tag1) {
    using S1 = decltype(tag1);
    const bool distributed = bcast_group != nullptr && bcast_group->size() > 1;
    if constexpr (std::is_same_v<S1, double>) {
      if (!distributed) {
        phase1_src = in.data();
        return;
      }
      double* bc = bcast_.get<double>(*dev_, nt * ns_in);
      if (!in.empty()) stream_->copy(in.data(), bc, nt * ns_in);
      bcast_group->broadcast(bc, nt * ns_in, 0);
      phase1_src = bc;
    } else {
      float* bc = bcast_.get<float>(*dev_, nt * ns_in);
      // Phantom devices still charge the staging-cast time.
      if (!in.empty() || dev_->phantom()) {
        precision::convert_array(*stream_, in.data(), bc, nt * ns_in);
      }
      if (distributed) bcast_group->broadcast(bc, nt * ns_in, 0);
      phase1_src = bc;
    }
  });
  if (bcast_group != nullptr && bcast_group->size() > 1) {
    stream_->advance(coll.broadcast_s);
    timings_.comm += coll.broadcast_s;
  }

  dispatch2(p1, p2, [&](auto tag1, auto tag2) {
    using S1 = decltype(tag1);
    using S2 = decltype(tag2);
    const S1* src = static_cast<const S1*>(phase1_src);
    S2* dst = padded_.get<S2>(*dev_, ns_in * L);
    if (fuse || std::is_same_v<S1, S2>) {
      precision::transpose_pad_cast<S2>(*stream_, src, dst, nt, ns_in, L);
    } else {
      S1* tmp = padded_.get<S1>(*dev_, ns_in * L);
      precision::transpose_pad_cast<S1>(*stream_, src, tmp, nt, ns_in, L);
      precision::convert_array(*stream_, tmp, dst, ns_in * L);
    }
  });
  timings_.pad += stream_->now() - t0 - timings_.comm;

  // ---- Phase 2: batched real FFT ----
  t0 = stream_->now();
  dispatch1(p2, [&](auto tag2) {
    using S2 = decltype(tag2);
    using C2 = std::complex<S2>;
    auto& plan = [&]() -> fft::BatchedRealFft<S2>& {
      if constexpr (std::is_same_v<S2, double>) {
        auto& slot = adjoint ? fft_d_d_ : fft_m_d_;
        if (!slot || slot->batch() != ns_in) slot.emplace(L, ns_in);
        return *slot;
      } else {
        auto& slot = adjoint ? fft_d_f_ : fft_m_f_;
        if (!slot || slot->batch() != ns_in) slot.emplace(L, ns_in);
        return *slot;
      }
    }();
    const S2* padded = padded_.get<S2>(*dev_, ns_in * L);
    C2* spec = spec_.get<C2>(*dev_, ns_in * nf);
    plan.forward_on(*stream_, padded, L, spec, nf);
  });
  timings_.fft += stream_->now() - t0;

  // ---- Phase 3: reorder + SBGEMV + reorder (all charged to SBGEMV,
  // matching the artifact's timing output) ----
  t0 = stream_->now();
  dispatch2(p2, p3, [&](auto tag2, auto tag3) {
    using C2 = std::complex<decltype(tag2)>;
    using C3 = std::complex<decltype(tag3)>;
    const C2* spec = spec_.get<C2>(*dev_, ns_in * nf);
    C3* spec_t = spec_t_.get<C3>(*dev_, nf * ns_in);
    if (fuse || std::is_same_v<C2, C3>) {
      precision::transpose_cast<C3>(*stream_, spec, spec_t, ns_in, nf);
    } else {
      C2* tmp = spec_t_.get<C2>(*dev_, nf * ns_in);
      precision::transpose_cast<C2>(*stream_, spec, tmp, ns_in, nf);
      precision::convert_array(*stream_, tmp, spec_t, nf * ns_in);
    }
  });
  dispatch1(p3, [&](auto tag3) {
    using C3 = std::complex<decltype(tag3)>;
    blas::SbgemvArgs<C3> args;
    args.op = adjoint ? blas::Op::C : blas::Op::N;
    args.m = dims_.n_d_local;
    args.n = dims_.n_m_local;
    args.alpha = C3(1);
    if constexpr (std::is_same_v<C3, cdouble>) {
      args.a = op.spectrum_d();
    } else {
      args.a = op.spectrum_f(*stream_);
    }
    args.lda = dims_.n_d_local;
    args.stride_a = dims_.n_d_local * dims_.n_m_local;
    args.x = spec_t_.get<C3>(*dev_, nf * ns_in);
    args.stride_x = ns_in;
    args.beta = C3(0);
    args.y = ospec_t_.get<C3>(*dev_, nf * ns_out);
    args.stride_y = ns_out;
    args.batch = nf;
    blas::sbgemv(*stream_, args, options_.gemv_policy);
  });
  dispatch2(p3, p4, [&](auto tag3, auto tag4) {
    using C3 = std::complex<decltype(tag3)>;
    using C4 = std::complex<decltype(tag4)>;
    const C3* ospec_t = ospec_t_.get<C3>(*dev_, nf * ns_out);
    C4* ospec = ospec_.get<C4>(*dev_, ns_out * nf);
    if (fuse || std::is_same_v<C3, C4>) {
      precision::transpose_cast<C4>(*stream_, ospec_t, ospec, nf, ns_out);
    } else {
      C3* tmp = ospec_.get<C3>(*dev_, ns_out * nf);
      precision::transpose_cast<C3>(*stream_, ospec_t, tmp, nf, ns_out);
      precision::convert_array(*stream_, tmp, ospec, ns_out * nf);
    }
  });
  timings_.sbgemv += stream_->now() - t0;

  // ---- Phase 4: batched inverse real FFT ----
  t0 = stream_->now();
  dispatch1(p4, [&](auto tag4) {
    using S4 = decltype(tag4);
    using C4 = std::complex<S4>;
    auto& plan = [&]() -> fft::BatchedRealFft<S4>& {
      if constexpr (std::is_same_v<S4, double>) {
        auto& slot = adjoint ? fft_m_d_ : fft_d_d_;
        if (!slot || slot->batch() != ns_out) slot.emplace(L, ns_out);
        return *slot;
      } else {
        auto& slot = adjoint ? fft_m_f_ : fft_d_f_;
        if (!slot || slot->batch() != ns_out) slot.emplace(L, ns_out);
        return *slot;
      }
    }();
    const C4* ospec = ospec_.get<C4>(*dev_, ns_out * nf);
    S4* opad = opad_.get<S4>(*dev_, ns_out * L);
    plan.inverse_on(*stream_, ospec, nf, opad, L);
  });
  timings_.ifft += stream_->now() - t0;

  // ---- Phase 5: fused unpad/transpose, reduction, final cast ----
  t0 = stream_->now();
  dispatch2(p4, p5, [&](auto tag4, auto tag5) {
    using S4 = decltype(tag4);
    using S5 = decltype(tag5);
    const S4* opad = opad_.get<S4>(*dev_, ns_out * L);
    S5* olocal = olocal_.get<S5>(*dev_, nt * ns_out);
    if (fuse || std::is_same_v<S4, S5>) {
      precision::unpad_transpose_cast<S5>(*stream_, opad, olocal, nt, ns_out, L);
    } else {
      S4* tmp = olocal_.get<S4>(*dev_, nt * ns_out);
      precision::unpad_transpose_cast<S4>(*stream_, opad, tmp, nt, ns_out, L);
      precision::convert_array(*stream_, tmp, olocal, nt * ns_out);
    }
  });

  if (partial != nullptr) {
    dispatch1(p5, [&](auto tag5) {
      using S5 = decltype(tag5);
      S5* dst;
      if constexpr (std::is_same_v<S5, double>) {
        dst = partial->d;
      } else {
        dst = partial->f;
      }
      if (dst == nullptr) {
        throw std::invalid_argument(
            "PartialSink pointer does not match the phase-5 precision");
      }
      stream_->copy(olocal_.get<S5>(*dev_, nt * ns_out), dst, nt * ns_out);
    });
    timings_.unpad += stream_->now() - t0;
    timings_.makespan = timings_.total();  // serial: nothing overlapped
    return;
  }

  double comm_before_reduce = timings_.comm;
  const bool is_reduce_root = reduce_group == nullptr || reduce_group->rank() == 0;
  dispatch1(p5, [&](auto tag5) {
    using S5 = decltype(tag5);
    S5* olocal = olocal_.get<S5>(*dev_, nt * ns_out);
    const S5* result = olocal;
    if (reduce_group != nullptr && reduce_group->size() > 1) {
      S5* recv = oreduce_.get<S5>(*dev_, nt * ns_out);
      reduce_group->reduce_sum(olocal, recv, nt * ns_out, 0);
      stream_->advance(coll.reduce_s);
      timings_.comm += coll.reduce_s;
      result = recv;
    }
    if (is_reduce_root && (!out.empty() || dev_->phantom())) {
      if (!dev_->phantom() && static_cast<index_t>(out.size()) != nt * ns_out) {
        throw std::invalid_argument("matvec: output span has wrong extent on root");
      }
      if constexpr (std::is_same_v<S5, double>) {
        stream_->copy(result, out.data(), nt * ns_out);
      } else {
        precision::convert_array(*stream_, result, out.data(), nt * ns_out);
      }
    }
  });
  timings_.unpad += stream_->now() - t0 - (timings_.comm - comm_before_reduce);
  timings_.makespan = timings_.total();  // serial: nothing overlapped
}

void FftMatvecPlan::apply_batch(const BlockToeplitzOperator& op,
                                ApplyDirection direction,
                                const PrecisionConfig& config,
                                std::span<const ConstVectorView> inputs,
                                std::span<const VectorView> outputs,
                                const BatchPipeline& pipeline) {
  const OperatorGroup group{&op, static_cast<index_t>(inputs.size())};
  apply_batch({&group, 1}, direction, config, inputs, outputs, pipeline);
}

void FftMatvecPlan::apply_batch(std::span<const OperatorGroup> groups,
                                ApplyDirection direction,
                                const PrecisionConfig& config,
                                std::span<const ConstVectorView> inputs,
                                std::span<const VectorView> outputs,
                                const BatchPipeline& pipeline) {
  const bool adjoint = direction == ApplyDirection::kAdjoint;
  const index_t b = static_cast<index_t>(inputs.size());
  if (b < 1) {
    throw std::invalid_argument("apply_batch: need at least one right-hand side");
  }
  if (outputs.size() != inputs.size()) {
    throw std::invalid_argument("apply_batch: inputs/outputs count mismatch");
  }
  if (groups.empty()) {
    throw std::invalid_argument("apply_batch: need at least one operator group");
  }
  index_t grouped_rhs = 0;
  for (const auto& g : groups) {
    if (g.op == nullptr || g.rhs_count < 1) {
      throw std::invalid_argument(
          "apply_batch: every group needs an operator and >= 1 RHS");
    }
    if (!(g.op->dims() == dims_)) {
      throw std::invalid_argument(
          "apply_batch: group operator dims do not match the plan");
    }
    grouped_rhs += g.rhs_count;
  }
  if (grouped_rhs != b) {
    throw std::invalid_argument(
        "apply_batch: group RHS counts do not sum to the input count");
  }

  const Precision p1 = config.phase(precision::kPhasePad);
  const Precision p2 = config.phase(precision::kPhaseFft);
  const Precision p3 = config.phase(precision::kPhaseSbgemv);
  const Precision p4 = config.phase(precision::kPhaseIfft);
  const Precision p5 = config.phase(precision::kPhaseUnpad);

  const index_t nt = dims_.n_t();
  const index_t L = dims_.padded_length();
  const index_t nf = dims_.num_frequencies();
  const index_t ns_in = adjoint ? dims_.n_d_local : dims_.n_m_local;
  const index_t ns_out = adjoint ? dims_.n_m_local : dims_.n_d_local;

  if (!dev_->phantom()) {
    for (index_t r = 0; r < b; ++r) {
      if (static_cast<index_t>(inputs[r].size()) != nt * ns_in) {
        throw std::invalid_argument("apply_batch: input span has wrong extent");
      }
      if (static_cast<index_t>(outputs[r].size()) != nt * ns_out) {
        throw std::invalid_argument("apply_batch: output span has wrong extent");
      }
    }
  }

  // Pipeline-argument validation (before any state mutation, like
  // the span checks above: a throwing call must not perturb
  // executions() or the previous apply's timings).
  const index_t chunks =
      std::min<index_t>(std::max<index_t>(pipeline.chunks, 1), b);
  if (chunks > 1 && pipeline.aux != nullptr &&
      &pipeline.aux->device() != dev_) {
    throw std::invalid_argument(
        "apply_batch: pipeline aux stream is bound to a different device");
  }

  timings_ = PhaseTimings{};
  rhs_timings_.clear();
  ++executions_;
  const bool fuse = options_.fuse_casts;

  // ---- Chunked executor.  The batch's b RHS are split into `chunks`
  // contiguous chunks (serial execution is the chunks == 1 degenerate
  // case running every stage on the plan's own stream).  Per chunk,
  // three stages:
  //   stage 1 (stream A): per-RHS staging cast + fused transpose/pad
  //     into the RHS-outer padded buffer, then ONE batched real FFT
  //     over cb * ns_in sequences (runtime batch multiplier);
  //   stage 2 (stream B): Fourier reorder, grouped multi-RHS SBGEMV,
  //     reorder back — the dominant phase at paper scale;
  //   stage 3 (stream A): ONE batched inverse FFT + per-RHS fused
  //     unpad/transpose into the caller's output views.
  // Issue order software-pipelines the chunks — stage2(i) on B, then
  // stage1(i+1) on A, then stage3(i) on A — so chunk i's SBGEMV
  // overlaps chunk i+1's pad+FFT.  Cross-stream dependencies are
  // events: stage2(i) waits for stage1(i)'s FFT, stage3(i) waits for
  // stage2(i); the spectrum workspaces ping-pong on chunk parity so
  // stage1(i+1) never overwrites the set stage2(i) still reads, and
  // the remaining reuse hazards (set parity recurs at i+2) are
  // already ordered by stage3(i)'s wait on stream A.  Numerics are
  // bit-identical to the serial batch: chunks partition the RHS
  // dimension, every kernel's per-RHS arithmetic is unchanged, and
  // host execution order per buffer is dependency-ordered.
  device::Stream& sa = *stream_;
  device::Stream* sb = &sa;
  if (chunks > 1) {
    if (pipeline.aux != nullptr) {
      sb = pipeline.aux;
    } else {
      if (!owned_aux_) owned_aux_.emplace(*dev_);
      sb = &*owned_aux_;
    }
  }
  // ABFT verification state: per-config tolerances plus the shared
  // double-width checksum workspaces (sized for the largest chunk).
  const VerifyMode verify = pipeline.verify;
  VerifyTolerances vtol;
  if (verify != VerifyMode::kOff) {
    vtol = verify_tolerances(config, dims_, adjoint);
  }
  const double t_begin = sa.now();
  const index_t cmax = (b + chunks - 1) / chunks;
  if (verify != VerifyMode::kOff) {
    const index_t chk_elems = nf * cmax;
    if (!chk_ || chk_->size() < chk_elems) chk_.emplace(*dev_, chk_elems);
    if (!chk_scale_ || chk_scale_->size() < chk_elems) {
      chk_scale_.emplace(*dev_, chk_elems);
    }
  }
  const auto chunk_lo = [&](index_t i) { return (i * b) / chunks; };
  DualComplex* spec_set[2] = {&spec_, &spec_alt_};
  DualComplex* spec_t_set[2] = {&spec_t_, &spec_t_alt_};
  DualComplex* ospec_t_set[2] = {&ospec_t_, &ospec_t_alt_};
  DualComplex* ospec_set[2] = {&ospec_, &ospec_alt_};
  std::vector<device::Event> ev_fft(static_cast<std::size_t>(chunks));
  std::vector<device::Event> ev_gemv(static_cast<std::size_t>(chunks));
  double gemv_seconds = 0.0;

  // Per-phase device-clock trace spans: each stage's [t0, now()]
  // window on its stream's track, so a pipelined batch renders chunk
  // i's SBGEMV (stream B) actually overlapping chunk i+1's pad+FFT
  // (stream A).  Untracked streams (trace_tid < 0 — phantom probes,
  // ad-hoc streams) never emit.
  const auto trace_phase = [&](const device::Stream& s, const char* phase,
                               index_t i, index_t cb, double t0) {
    if (util::trace::enabled() && s.trace_tid() >= 0) {
      util::trace::complete_device(s.trace_tid(), phase, "phase", t0,
                                   s.now() - t0, {{"chunk", i}, {"rhs", cb}});
    }
  };

  const auto stage1 = [&](index_t i) {
    const index_t lo = chunk_lo(i), hi = chunk_lo(i + 1);
    const index_t cb = hi - lo;
    const std::size_t par = static_cast<std::size_t>(i % 2);
    double t0 = sa.now();
    dispatch2(p1, p2, [&](auto tag1, auto tag2) {
      using S1 = decltype(tag1);
      using S2 = decltype(tag2);
      S2* dst_all = padded_.get<S2>(*dev_, cmax * ns_in * L);
      for (index_t r = lo; r < hi; ++r) {
        const double* in = inputs[r].data();
        const S1* src;
        if constexpr (std::is_same_v<S1, double>) {
          src = in;
        } else {
          float* bc = bcast_.get<float>(*dev_, nt * ns_in);
          if (in != nullptr || dev_->phantom()) {
            precision::convert_array(sa, in, bc, nt * ns_in);
          }
          src = bc;
        }
        S2* dst = dst_all + (r - lo) * ns_in * L;
        if (fuse || std::is_same_v<S1, S2>) {
          precision::transpose_pad_cast<S2>(sa, src, dst, nt, ns_in, L);
        } else {
          S1* tmp = padded_.get<S1>(*dev_, ns_in * L);
          precision::transpose_pad_cast<S1>(sa, src, tmp, nt, ns_in, L);
          precision::convert_array(sa, tmp, dst, ns_in * L);
        }
      }
    });
    trace_phase(sa, "pad", i, cb, t0);
    timings_.pad += sa.now() - t0;
    t0 = sa.now();
    dispatch1(p2, [&](auto tag2) {
      using S2 = decltype(tag2);
      using C2 = std::complex<S2>;
      auto& plan = [&]() -> fft::BatchedRealFft<S2>& {
        if constexpr (std::is_same_v<S2, double>) {
          auto& slot = adjoint ? fft_d_d_ : fft_m_d_;
          if (!slot || slot->batch() != ns_in) slot.emplace(L, ns_in);
          return *slot;
        } else {
          auto& slot = adjoint ? fft_d_f_ : fft_m_f_;
          if (!slot || slot->batch() != ns_in) slot.emplace(L, ns_in);
          return *slot;
        }
      }();
      const S2* padded = padded_.get<S2>(*dev_, cmax * ns_in * L);
      C2* spec = spec_set[par]->get<C2>(*dev_, cmax * ns_in * nf);
      plan.forward_on(sa, padded, L, spec, nf, /*batch_multiplier=*/cb);
      if (verify == VerifyMode::kParanoid) {
        plan.verify_parseval_on(sa, padded, L, spec, nf, cb, vtol.fft_forward,
                                "fft-parseval-forward");
      }
    });
    trace_phase(sa, "fft", i, cb, t0);
    timings_.fft += sa.now() - t0;
    ev_fft[static_cast<std::size_t>(i)].record(sa);
  };

  const auto stage2 = [&](index_t i) {
    const index_t lo = chunk_lo(i), hi = chunk_lo(i + 1);
    const index_t cb = hi - lo;
    const std::size_t par = static_cast<std::size_t>(i % 2);
    sb->wait(ev_fft[static_cast<std::size_t>(i)]);
    const double t0 = sb->now();
    dispatch2(p2, p3, [&](auto tag2, auto tag3) {
      using C2 = std::complex<decltype(tag2)>;
      using C3 = std::complex<decltype(tag3)>;
      const C2* spec = spec_set[par]->get<C2>(*dev_, cmax * ns_in * nf);
      C3* spec_t = spec_t_set[par]->get<C3>(*dev_, nf * cmax * ns_in);
      if (fuse || std::is_same_v<C2, C3>) {
        precision::transpose_cast<C3>(*sb, spec, spec_t, cb * ns_in, nf);
      } else {
        C2* tmp = spec_t_set[par]->get<C2>(*dev_, nf * cmax * ns_in);
        precision::transpose_cast<C2>(*sb, spec, tmp, cb * ns_in, nf);
        precision::convert_array(*sb, tmp, spec_t, nf * cb * ns_in);
      }
    });
    const double gemv_t0 = sb->now();
    dispatch1(p3, [&](auto tag3) {
      using C3 = std::complex<decltype(tag3)>;
      // Per-group operator-spectrum base pointers, sliced to this
      // chunk's RHS range [lo, hi): nothing else in the pipeline is
      // operator-specific, so this is the only stage that
      // distinguishes a grouped (cross-tenant) batch from a flat one.
      std::vector<blas::SbgemvGroup<C3>> gemv_groups;
      gemv_groups.reserve(groups.size());
      index_t g0 = 0;
      for (const auto& g : groups) {
        const index_t s = std::max(lo, g0);
        const index_t e = std::min(hi, g0 + g.rhs_count);
        g0 += g.rhs_count;
        if (s >= e) continue;
        const C3* spectrum;
        const C3* checksum = nullptr;
        if constexpr (std::is_same_v<C3, cdouble>) {
          spectrum = g.op->spectrum_d();
          if (verify != VerifyMode::kOff) {
            checksum = g.op->checksum_d(*sb, adjoint);
          }
        } else {
          spectrum = g.op->spectrum_f(*sb);
          if (verify != VerifyMode::kOff) {
            checksum = g.op->checksum_f(*sb, adjoint);
          }
        }
        gemv_groups.push_back({spectrum, e - s, checksum});
      }
      blas::SbgemvGroupedArgs<C3> args;
      args.base.op = adjoint ? blas::Op::C : blas::Op::N;
      args.base.m = dims_.n_d_local;
      args.base.n = dims_.n_m_local;
      args.base.alpha = C3(1);
      args.base.lda = dims_.n_d_local;
      args.base.stride_a = dims_.n_d_local * dims_.n_m_local;
      args.base.x = spec_t_set[par]->get<C3>(*dev_, nf * cmax * ns_in);
      args.base.stride_x = cb * ns_in;
      args.base.beta = C3(0);
      args.base.y = ospec_t_set[par]->get<C3>(*dev_, nf * cmax * ns_out);
      args.base.stride_y = cb * ns_out;
      args.base.batch = nf;
      args.rhs_stride_x = ns_in;
      args.rhs_stride_y = ns_out;
      args.groups = gemv_groups;
      blas::SbgemvVerify<C3> vreq;
      if (verify != VerifyMode::kOff) {
        vreq.enabled = true;
        vreq.checksum_out = chk_->data();
        vreq.scale_out = chk_scale_->data();
        vreq.tolerance = vtol.gemv;
      }
      blas::sbgemv_grouped(*sb, args, options_.gemv_policy, vreq);
    });
    gemv_seconds += sb->now() - gemv_t0;
    dispatch2(p3, p4, [&](auto tag3, auto tag4) {
      using C3 = std::complex<decltype(tag3)>;
      using C4 = std::complex<decltype(tag4)>;
      const C3* ospec_t = ospec_t_set[par]->get<C3>(*dev_, nf * cmax * ns_out);
      C4* ospec = ospec_set[par]->get<C4>(*dev_, cmax * ns_out * nf);
      if (fuse || std::is_same_v<C3, C4>) {
        precision::transpose_cast<C4>(*sb, ospec_t, ospec, nf, cb * ns_out);
      } else {
        C3* tmp = ospec_set[par]->get<C3>(*dev_, cmax * ns_out * nf);
        precision::transpose_cast<C3>(*sb, ospec_t, tmp, nf, cb * ns_out);
        precision::convert_array(*sb, tmp, ospec, cb * ns_out * nf);
      }
    });
    trace_phase(*sb, "sbgemv", i, cb, t0);
    timings_.sbgemv += sb->now() - t0;
    ev_gemv[static_cast<std::size_t>(i)].record(*sb);
  };

  const auto stage3 = [&](index_t i) {
    const index_t lo = chunk_lo(i), hi = chunk_lo(i + 1);
    const index_t cb = hi - lo;
    const std::size_t par = static_cast<std::size_t>(i % 2);
    sa.wait(ev_gemv[static_cast<std::size_t>(i)]);
    double t0 = sa.now();
    dispatch1(p4, [&](auto tag4) {
      using S4 = decltype(tag4);
      using C4 = std::complex<S4>;
      auto& plan = [&]() -> fft::BatchedRealFft<S4>& {
        if constexpr (std::is_same_v<S4, double>) {
          auto& slot = adjoint ? fft_m_d_ : fft_d_d_;
          if (!slot || slot->batch() != ns_out) slot.emplace(L, ns_out);
          return *slot;
        } else {
          auto& slot = adjoint ? fft_m_f_ : fft_d_f_;
          if (!slot || slot->batch() != ns_out) slot.emplace(L, ns_out);
          return *slot;
        }
      }();
      const C4* ospec = ospec_set[par]->get<C4>(*dev_, cmax * ns_out * nf);
      S4* opad = opad_.get<S4>(*dev_, cmax * ns_out * L);
      plan.inverse_on(sa, ospec, nf, opad, L, /*batch_multiplier=*/cb);
      if (verify == VerifyMode::kParanoid) {
        plan.verify_parseval_on(sa, opad, L, ospec, nf, cb, vtol.fft_inverse,
                                "fft-parseval-inverse");
      }
    });
    trace_phase(sa, "ifft", i, cb, t0);
    timings_.ifft += sa.now() - t0;
    t0 = sa.now();
    for (index_t r = lo; r < hi; ++r) {
      dispatch2(p4, p5, [&](auto tag4, auto tag5) {
        using S4 = decltype(tag4);
        using S5 = decltype(tag5);
        const S4* opad =
            opad_.get<S4>(*dev_, cmax * ns_out * L) + (r - lo) * ns_out * L;
        S5* olocal = olocal_.get<S5>(*dev_, nt * ns_out);
        if (fuse || std::is_same_v<S4, S5>) {
          precision::unpad_transpose_cast<S5>(sa, opad, olocal, nt, ns_out, L);
        } else {
          S4* tmp = olocal_.get<S4>(*dev_, nt * ns_out);
          precision::unpad_transpose_cast<S4>(sa, opad, tmp, nt, ns_out, L);
          precision::convert_array(sa, tmp, olocal, nt * ns_out);
        }
      });
      dispatch1(p5, [&](auto tag5) {
        using S5 = decltype(tag5);
        S5* olocal = olocal_.get<S5>(*dev_, nt * ns_out);
        double* out = outputs[r].data();
        if (out != nullptr || dev_->phantom()) {
          if constexpr (std::is_same_v<S5, double>) {
            sa.copy(olocal, out, nt * ns_out);
          } else {
            precision::convert_array(sa, olocal, out, nt * ns_out);
          }
        }
      });
    }
    trace_phase(sa, "unpad", i, cb, t0);
    timings_.unpad += sa.now() - t0;
  };

  stage1(0);
  for (index_t i = 0; i < chunks; ++i) {
    stage2(i);
    if (i + 1 < chunks) stage1(i + 1);
    stage3(i);
  }
  // Stream A waited on every stage-2 event, so its elapsed time IS
  // the two-stream makespan: overlapped time is credited as
  // max-over-streams, while the per-phase fields above carry the
  // busy-time sum (makespan == busy total iff chunks == 1).
  timings_.makespan = sa.now() - t_begin;

  // ---- Per-RHS attribution (last_batch_timings).  Phases 1/2/4/5,
  // the phase-3 reorders and the batch makespan do identical work per
  // RHS (one shape per batch) and split evenly (so the shares' phase
  // fields sum to the batch's busy phases and their makespans to the
  // batch makespan); the GEMV launch splits across groups in
  // proportion to each group's modelled traffic — one n_d x n_m
  // matrix read per group plus the group's (ns_in + ns_out) vector
  // elements per RHS, the nf and element-size factors cancelling —
  // then evenly within a group.  A singleton group therefore carries
  // its full matrix read while a b-wide group amortises its own over
  // b requests; with one group this reduces to the even split.
  const double db = static_cast<double>(b);
  const double mat_w = static_cast<double>(dims_.n_d_local) *
                       static_cast<double>(dims_.n_m_local);
  const double vec_w = static_cast<double>(ns_in + ns_out);
  double total_w = 0.0;
  for (const auto& g : groups) {
    total_w += mat_w + static_cast<double>(g.rhs_count) * vec_w;
  }
  PhaseTimings even = timings_;
  even.sbgemv = timings_.sbgemv - gemv_seconds;  // the two reorders
  even *= 1.0 / db;
  rhs_timings_.assign(static_cast<std::size_t>(b), even);
  std::size_t r0 = 0;
  for (const auto& g : groups) {
    const double group_w = mat_w + static_cast<double>(g.rhs_count) * vec_w;
    const double gemv_share =
        gemv_seconds * (group_w / total_w) / static_cast<double>(g.rhs_count);
    for (index_t r = 0; r < g.rhs_count; ++r) {
      rhs_timings_[r0 + static_cast<std::size_t>(r)].sbgemv += gemv_share;
    }
    r0 += static_cast<std::size_t>(g.rhs_count);
  }
}

}  // namespace fftmv::core
