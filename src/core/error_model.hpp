// First-order rounding-error model of the mixed-precision matvec —
// Eq. (6) of the paper (§3.2.1):
//
//   ||dv5|| / ||v5|| <= kappa(F_hat) * [ c1 e1
//        + (c_F e_d + c2 e2 + c4 e4) log2(N_t)
//        + c3 e3 n_m + c5 e5 log2(p_c) ]
//
// with n_m -> n_d and p_c -> p_r for the adjoint matvec, e_i the
// machine epsilon of phase i's precision and c_i O(1) algorithm
// constants.  c1 is zero when phase 1 runs in double: a pure memory
// operation in the input precision is exact.
#pragma once

#include "core/problem.hpp"
#include "precision/precision.hpp"
#include "util/math.hpp"

namespace fftmv::core {

struct ErrorModelConstants {
  double c1 = 1.0;
  double c2 = 1.0;
  double c3 = 1.0;
  double c4 = 1.0;
  double c5 = 1.0;
  double c_setup_fft = 1.0;  ///< c_F: setup FFT of the operator (double)
};

/// Inputs that depend on the run: the amplification factor and the
/// distribution.  `amplification` plays the role of kappa(F_hat); in
/// practice we use the observed normwise amplification
/// ||F_hat||_F ||v0|| / ||v5|| (see EXPERIMENTS.md) because the exact
/// condition number of the rectangular frequency blocks is not
/// available in-application.
struct ErrorModelInputs {
  LocalDims dims;
  index_t reduce_ranks = 1;  ///< p_c for F, p_r for F*
  bool adjoint = false;
  double amplification = 1.0;
};

inline double error_bound(const precision::PrecisionConfig& config,
                          const ErrorModelInputs& in,
                          const ErrorModelConstants& c = {}) {
  using precision::Precision;
  const double e1 = precision::eps(config.phase(precision::kPhasePad));
  const double e2 = precision::eps(config.phase(precision::kPhaseFft));
  const double e3 = precision::eps(config.phase(precision::kPhaseSbgemv));
  const double e4 = precision::eps(config.phase(precision::kPhaseIfft));
  const double e5 = precision::eps(config.phase(precision::kPhaseUnpad));

  // Memory-only phases are exact in double (c1 := 0, §3.2.1).
  const double c1 = config.phase(precision::kPhasePad) == Precision::kDouble
                        ? 0.0
                        : c.c1;
  const double c5 = config.phase(precision::kPhaseUnpad) == Precision::kDouble &&
                            in.reduce_ranks <= 1
                        ? 0.0
                        : c.c5;

  const double log_nt = util::log2_ceil(util::next_pow2(in.dims.n_t()));
  const double n_loc = static_cast<double>(in.adjoint ? in.dims.n_d_local
                                                      : in.dims.n_m_local);
  const double log_p =
      in.reduce_ranks > 1 ? util::log2_ceil(util::next_pow2(in.reduce_ranks)) : 1.0;

  const double terms = c1 * e1 +
                       (c.c_setup_fft * kEpsDouble + c.c2 * e2 + c.c4 * e4) * log_nt +
                       c.c3 * e3 * n_loc + c5 * e5 * log_p;
  return in.amplification * terms;
}

/// Safety factor over the first-order ABFT tolerance terms.  The
/// error-model constants are O(1) but not sharp, kernel summation
/// orders differ from the sequential model (tree reductions, lane
/// striding), and the checksum encoding itself rounds — a generous
/// constant absorbs all of that while staying orders of magnitude
/// below an exponent-bit flip.  Validated by the zero-false-positive
/// property test across all 32 precision configs.
inline constexpr double kVerifySafety = 64.0;

/// Per-phase ABFT verification tolerances, calibrated from the same
/// per-config epsilons as error_bound so a legitimate mixed-precision
/// rounding (even `sssss`) never trips a false positive.
///
/// gemv: the checksum relation  sum_i y_i == alpha * (checksum . x)
/// is compared at a scale that already carries the data's magnitude
/// (see blas::SbgemvVerify), so the tolerance only needs the relative
/// rounding headroom: x_len * eps3 for the phase-3 dots on either
/// side of the relation (the y sum inherits each element's GEMV
/// rounding; the checksum dot re-rounds the encoding row), plus
/// (x_len + y_len) * eps_d for the double-precision reductions the
/// verify pass itself performs.
///
/// fft: Parseval compares energies, whose relative error is twice the
/// amplitude error, itself bounded by the FFT's O(log2 L) rounding
/// growth in the phase precision plus the double energy reductions.
struct VerifyTolerances {
  double gemv = 0.0;
  double fft_forward = 0.0;
  double fft_inverse = 0.0;
};

inline VerifyTolerances verify_tolerances(
    const precision::PrecisionConfig& config, const LocalDims& dims,
    bool adjoint) {
  const double e2 = precision::eps(config.phase(precision::kPhaseFft));
  const double e3 = precision::eps(config.phase(precision::kPhaseSbgemv));
  const double e4 = precision::eps(config.phase(precision::kPhaseIfft));
  const double x_len = static_cast<double>(adjoint ? dims.n_d_local
                                                   : dims.n_m_local);
  const double y_len = static_cast<double>(adjoint ? dims.n_m_local
                                                   : dims.n_d_local);
  const double log_l =
      util::log2_ceil(util::next_pow2(2 * dims.n_t())) + 2.0;
  VerifyTolerances tol;
  tol.gemv = kVerifySafety * ((x_len + y_len) * kEpsDouble + x_len * e3);
  tol.fft_forward = kVerifySafety * log_l * (e2 + kEpsDouble);
  tol.fft_inverse = kVerifySafety * log_l * (e4 + kEpsDouble);
  return tol;
}

/// The phase whose epsilon term dominates the bound — §3.2.1 argues
/// this is the SBGEMV whenever its n-dependence is active.
inline int dominant_phase(const precision::PrecisionConfig& config,
                          const ErrorModelInputs& in,
                          const ErrorModelConstants& c = {}) {
  double best = -1.0;
  int phase = precision::kPhaseSbgemv;
  const double log_nt = util::log2_ceil(util::next_pow2(in.dims.n_t()));
  const double n_loc = static_cast<double>(in.adjoint ? in.dims.n_d_local
                                                      : in.dims.n_m_local);
  const double contributions[precision::kNumPhases] = {
      (config.phase(0) == precision::Precision::kDouble ? 0.0 : c.c1) *
          precision::eps(config.phase(0)),
      c.c2 * precision::eps(config.phase(1)) * log_nt,
      c.c3 * precision::eps(config.phase(2)) * n_loc,
      c.c4 * precision::eps(config.phase(3)) * log_nt,
      c.c5 * precision::eps(config.phase(4)) *
          (in.reduce_ranks > 1 ? util::log2_ceil(util::next_pow2(in.reduce_ranks))
                               : 0.0),
  };
  for (int i = 0; i < precision::kNumPhases; ++i) {
    if (contributions[i] > best) {
      best = contributions[i];
      phase = i;
    }
  }
  return phase;
}

}  // namespace fftmv::core
