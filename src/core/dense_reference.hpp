// Dense (traditional) block-triangular Toeplitz matvec baseline.
//
// Computes d_i = sum_{j <= i} F_{i-j+1} m_j directly from the first
// block column in O(N_t^2 N_d N_m) — the "traditional method" the
// FFT algorithm supersedes by orders of magnitude (paper §1).  Used
// as ground truth in correctness tests and as the comparison point
// in bench/ablation_dense_vs_fft.  All arithmetic in double.
#pragma once

#include <span>
#include <stdexcept>

#include "core/problem.hpp"
#include "util/types.hpp"

namespace fftmv::core {

/// `first_block_col` time-outer (n_t, n_d, n_m); `m` TOSI
/// (n_t x n_m); `d` TOSI (n_t x n_d).
inline void dense_forward(const LocalDims& dims,
                          std::span<const double> first_block_col,
                          std::span<const double> m, std::span<double> d) {
  const index_t nt = dims.n_t();
  const index_t nd = dims.n_d_local;
  const index_t nm = dims.n_m_local;
  if (static_cast<index_t>(first_block_col.size()) != nt * nd * nm ||
      static_cast<index_t>(m.size()) != nt * nm ||
      static_cast<index_t>(d.size()) != nt * nd) {
    throw std::invalid_argument("dense_forward: extent mismatch");
  }
  for (index_t i = 0; i < nt * nd; ++i) d[i] = 0.0;
  for (index_t ti = 0; ti < nt; ++ti) {
    for (index_t tj = 0; tj <= ti; ++tj) {
      const double* block = first_block_col.data() + (ti - tj) * nd * nm;
      const double* mj = m.data() + tj * nm;
      double* di = d.data() + ti * nd;
      for (index_t s = 0; s < nd; ++s) {
        double acc = 0.0;
        const double* row = block + s * nm;
        for (index_t k = 0; k < nm; ++k) acc += row[k] * mj[k];
        di[s] += acc;
      }
    }
  }
}

/// Adjoint baseline: m_j = sum_{i >= j} F_{i-j+1}^T d_i.
inline void dense_adjoint(const LocalDims& dims,
                          std::span<const double> first_block_col,
                          std::span<const double> d, std::span<double> m) {
  const index_t nt = dims.n_t();
  const index_t nd = dims.n_d_local;
  const index_t nm = dims.n_m_local;
  if (static_cast<index_t>(first_block_col.size()) != nt * nd * nm ||
      static_cast<index_t>(d.size()) != nt * nd ||
      static_cast<index_t>(m.size()) != nt * nm) {
    throw std::invalid_argument("dense_adjoint: extent mismatch");
  }
  for (index_t i = 0; i < nt * nm; ++i) m[i] = 0.0;
  for (index_t ti = 0; ti < nt; ++ti) {
    for (index_t tj = 0; tj <= ti; ++tj) {
      const double* block = first_block_col.data() + (ti - tj) * nd * nm;
      const double* di = d.data() + ti * nd;
      double* mj = m.data() + tj * nm;
      for (index_t s = 0; s < nd; ++s) {
        const double ds = di[s];
        const double* row = block + s * nm;
        for (index_t k = 0; k < nm; ++k) mj[k] += row[k] * ds;
      }
    }
  }
}

/// Flop count of the dense matvec (for the speedup ablation).
inline double dense_matvec_flops(const ProblemDims& dims) {
  const double nt = static_cast<double>(dims.n_t);
  return nt * (nt + 1) / 2.0 * 2.0 * static_cast<double>(dims.n_d) *
         static_cast<double>(dims.n_m);
}

}  // namespace fftmv::core
