#include "core/block_toeplitz.hpp"

#include <cmath>
#include <stdexcept>

#include "blas/permute.hpp"
#include "fft/plan.hpp"
#include "precision/convert.hpp"
#include "util/math.hpp"

namespace fftmv::core {

namespace {

/// Setup permutation: spectra stored sequence-major
/// ((i*n_m + j) * n_f + f) -> frequency-block column-major
/// (f * n_d * n_m + j * n_d + i).  This is the second use of the
/// custom permutation kernel that replaced the cuTENSOR (v2)
/// dependency (paper §3.1); grid-limit-safe like blas::transpose_batched.
device::KernelTiming spectrum_to_blocks(device::Stream& stream, const cdouble* src,
                                        cdouble* dst, index_t n_d, index_t n_m,
                                        index_t n_f) {
  const auto& spec = stream.device().spec();
  const device::LaunchGeometry geom{
      .grid_x = util::ceil_div(n_f, index_t{16}),
      .grid_y = std::min(n_d, spec.max_grid_dim_yz),
      .grid_z = 1,
      .block_threads = 256};
  device::KernelFootprint fp;
  const double bytes = static_cast<double>(n_d) * static_cast<double>(n_m) *
                       static_cast<double>(n_f) * sizeof(cdouble);
  fp.bytes_read = bytes;
  fp.bytes_written = bytes;
  fp.fp64_path = true;
  fp.vector_load_bytes = 16;
  fp.coalescing_efficiency = 0.8;
  return stream.launch(geom, fp, [=](index_t bx, index_t by, index_t) {
    const index_t f0 = bx * 16;
    const index_t f1 = std::min(n_f, f0 + 16);
    for (index_t i = by; i < n_d; i += geom.grid_y) {
      for (index_t j = 0; j < n_m; ++j) {
        const cdouble* seq = src + (i * n_m + j) * n_f;
        for (index_t f = f0; f < f1; ++f) {
          dst[f * n_d * n_m + j * n_d + i] = seq[f];
        }
      }
    }
  });
}

/// Compute the per-frequency-block checksum rows: column sums
/// (forward) or row sums (adjoint), accumulated in double and
/// narrowed to the spectrum's own precision.  One gridblock per
/// frequency block; charged like any setup kernel.
template <class C>
device::KernelTiming compute_checksums(device::Stream& stream,
                                       const C* spectrum, C* out, index_t n_d,
                                       index_t n_m, index_t n_f, bool adjoint) {
  const index_t x_len = adjoint ? n_d : n_m;
  const device::LaunchGeometry geom{
      .grid_x = n_f, .grid_y = 1, .grid_z = 1, .block_threads = 256};
  device::KernelFootprint fp;
  fp.bytes_read = static_cast<double>(n_d) * static_cast<double>(n_m) *
                  static_cast<double>(n_f) * sizeof(C);
  fp.bytes_written =
      static_cast<double>(n_f) * static_cast<double>(x_len) * sizeof(C);
  fp.flops = 2.0 * static_cast<double>(n_d) * static_cast<double>(n_m) *
             static_cast<double>(n_f);
  fp.fp64_path = true;
  fp.vector_load_bytes = 16;
  fp.coalescing_efficiency = 0.8;
  return stream.launch(geom, fp, [=](index_t bx, index_t, index_t) {
    const C* blk = spectrum + bx * n_d * n_m;
    C* o = out + bx * x_len;
    if (adjoint) {
      for (index_t i = 0; i < n_d; ++i) {
        cdouble acc{};
        for (index_t j = 0; j < n_m; ++j) acc += cdouble(blk[i + j * n_d]);
        o[i] = C(acc);
      }
    } else {
      for (index_t j = 0; j < n_m; ++j) {
        cdouble acc{};
        for (index_t i = 0; i < n_d; ++i) acc += cdouble(blk[i + j * n_d]);
        o[j] = C(acc);
      }
    }
  });
}

}  // namespace

BlockToeplitzOperator::BlockToeplitzOperator(device::Device& dev,
                                             device::Stream& stream,
                                             const LocalDims& dims,
                                             std::span<const double> first_block_col)
    : dev_(&dev), dims_(dims), spectrum_d_(dev, spectrum_elems()) {
  const index_t n_seq = block_elems();        // n_d * n_m time sequences
  const index_t n_t = dims_.n_t();
  const index_t L = dims_.padded_length();
  const index_t n_f = dims_.num_frequencies();

  if (!dev.phantom() &&
      static_cast<index_t>(first_block_col.size()) != n_seq * n_t) {
    throw std::invalid_argument(
        "BlockToeplitzOperator: first_block_col has wrong extent");
  }

  const double t0 = stream.now();

  // Scratch buffers live only during setup.
  device::device_vector<double> seq_major(dev, n_seq * n_t);
  device::device_vector<double> padded(dev, n_seq * L);
  device::device_vector<cdouble> spectra(dev, n_seq * n_f);

  // 1. Permute time-outer (n_t, n_d*n_m) -> sequence-major
  //    (n_d*n_m, n_t): the cuTENSOR-replacement kernel.
  blas::transpose_batched(stream, first_block_col.data(), seq_major.data(),
                          /*batch=*/1, /*rows=*/n_t, /*cols=*/n_seq);

  // 2. Zero-pad every sequence to the circulant length L = 2 N_t.
  precision::pad_rows_cast<double>(stream, seq_major.data(), padded.data(), n_t,
                                   n_seq, L);

  // 3. Batched real FFT of all n_d*n_m sequences (always double).
  fft::BatchedRealFft<double> plan(L, n_seq);
  plan.forward_on(stream, padded.data(), L, spectra.data(), n_f);

  // 4. Permute spectra into per-frequency column-major blocks.
  spectrum_to_blocks(stream, spectra.data(), spectrum_d_.data(), dims_.n_d_local,
                     dims_.n_m_local, n_f);

  if (!dev.phantom()) {
    double acc = 0.0;
    for (index_t k = 0; k < spectrum_elems(); ++k) {
      acc += std::norm(spectrum_d_[k]);
    }
    spectrum_norm_ = std::sqrt(acc);
  }

  setup_seconds_ = stream.now() - t0;
}

const cfloat* BlockToeplitzOperator::spectrum_f(device::Stream& stream) const {
  if (!spectrum_f_) {
    spectrum_f_.emplace(*dev_, spectrum_elems());
    precision::convert_array(stream, spectrum_d_.data(), spectrum_f_->data(),
                             spectrum_elems());
  }
  return spectrum_f_->data();
}

const cdouble* BlockToeplitzOperator::checksum_d(device::Stream& stream,
                                                 bool adjoint) const {
  auto& slot = adjoint ? checksum_row_d_ : checksum_col_d_;
  if (!slot) {
    const index_t x_len = adjoint ? dims_.n_d_local : dims_.n_m_local;
    slot.emplace(*dev_, dims_.num_frequencies() * x_len);
    compute_checksums(stream, spectrum_d_.data(), slot->data(),
                      dims_.n_d_local, dims_.n_m_local,
                      dims_.num_frequencies(), adjoint);
  }
  return slot->data();
}

const cfloat* BlockToeplitzOperator::checksum_f(device::Stream& stream,
                                                bool adjoint) const {
  auto& slot = adjoint ? checksum_row_f_ : checksum_col_f_;
  if (!slot) {
    const cfloat* spec = spectrum_f(stream);
    const index_t x_len = adjoint ? dims_.n_d_local : dims_.n_m_local;
    slot.emplace(*dev_, dims_.num_frequencies() * x_len);
    compute_checksums(stream, spec, slot->data(), dims_.n_d_local,
                      dims_.n_m_local, dims_.num_frequencies(), adjoint);
  }
  return slot->data();
}

}  // namespace fftmv::core
