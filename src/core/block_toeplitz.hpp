// Fourier-space representation of a block-lower-triangular Toeplitz
// operator (paper §2.3-2.4).
//
// Only the first block column {F_11, F_21, ..., F_{Nt,1}} is stored
// (time invariance); setup embeds it in a block circulant of size
// L = 2 N_t and precomputes the batched real FFT of every (sensor,
// parameter) time sequence, yielding N_t + 1 frequency blocks
// F_hat_f of shape n_d x n_m (column-major, ready for the Phase-3
// SBGEMV).  Setup always runs in double precision (§3.2: "a one-time
// operation that is not performance critical"); a single-precision
// copy of the spectrum is materialised lazily for configurations
// whose SBGEMV phase computes in single.
#pragma once

#include <optional>
#include <span>

#include "core/problem.hpp"
#include "device/device_vector.hpp"
#include "device/stream.hpp"
#include "util/types.hpp"

namespace fftmv::core {

class BlockToeplitzOperator {
 public:
  /// `first_block_col` is time-outer: element (t, i, j) — block t,
  /// sensor i, parameter j — lives at t*(n_d*n_m) + i*n_m + j.
  /// Empty span is allowed only on a phantom device (dry-run shape).
  BlockToeplitzOperator(device::Device& dev, device::Stream& stream,
                        const LocalDims& dims,
                        std::span<const double> first_block_col);

  const LocalDims& dims() const { return dims_; }

  /// Frequency blocks, double precision: block f is the column-major
  /// n_d x n_m matrix at spectrum_d() + f*n_d*n_m (lda = n_d).
  const cdouble* spectrum_d() const { return spectrum_d_.data(); }

  /// Lazily cast single-precision copy (charged to `stream`).
  const cfloat* spectrum_f(device::Stream& stream) const;

  /// ABFT checksum rows (Huang-Abraham encoding) for the grouped
  /// GEMV's verify mode, lazily materialised and charged to `stream`:
  /// for each frequency block, the column sums (forward matvec,
  /// length n_m_local) or row sums (adjoint, length n_d_local) of the
  /// block, laid out block-contiguously — block f's vector starts at
  /// f * x_len.  The single-precision rows are summed from the
  /// single-precision spectrum (the matrix the verified kernel
  /// actually reads) so matrix-cast rounding cancels out of the
  /// checksum relation instead of accumulating into it.
  const cdouble* checksum_d(device::Stream& stream, bool adjoint) const;
  const cfloat* checksum_f(device::Stream& stream, bool adjoint) const;

  index_t block_elems() const { return dims_.n_d_local * dims_.n_m_local; }
  index_t spectrum_elems() const {
    return dims_.num_frequencies() * block_elems();
  }

  /// Frobenius norm of the frequency-space operator (used by the
  /// error model's amplification estimate).  Zero on phantom devices.
  double spectrum_norm() const { return spectrum_norm_; }

  /// Simulated seconds spent in setup.
  double setup_seconds() const { return setup_seconds_; }

 private:
  device::Device* dev_;
  LocalDims dims_;
  device::device_vector<cdouble> spectrum_d_;
  mutable std::optional<device::device_vector<cfloat>> spectrum_f_;
  mutable std::optional<device::device_vector<cdouble>> checksum_col_d_;
  mutable std::optional<device::device_vector<cdouble>> checksum_row_d_;
  mutable std::optional<device::device_vector<cfloat>> checksum_col_f_;
  mutable std::optional<device::device_vector<cfloat>> checksum_row_f_;
  double spectrum_norm_ = 0.0;
  double setup_seconds_ = 0.0;
};

}  // namespace fftmv::core
