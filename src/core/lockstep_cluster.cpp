#include "core/lockstep_cluster.hpp"

#include <stdexcept>

#include "comm/tree_reduce.hpp"

namespace fftmv::core {

using precision::Precision;
using precision::PrecisionConfig;

LockstepCluster::LockstepCluster(device::Device& dev, device::Stream& stream,
                                 const ProblemDims& dims,
                                 const comm::ProcessGrid& grid,
                                 const std::vector<double>& global_first_block_col,
                                 MatvecOptions options)
    : dev_(&dev), stream_(&stream), dims_(dims), grid_(grid), options_(options) {
  dims_.validate();
  if (dims_.n_m % grid.cols() != 0 || dims_.n_d % grid.rows() != 0) {
    throw std::invalid_argument(
        "LockstepCluster: N_m and N_d must divide evenly over the grid");
  }
  const index_t p = grid_.size();
  local_dims_.reserve(static_cast<std::size_t>(p));
  ops_.reserve(static_cast<std::size_t>(p));
  for (index_t rank = 0; rank < p; ++rank) {
    local_dims_.push_back(LocalDims::for_rank(dims_, grid_, rank));
    const auto slice =
        slice_first_block_col(dims_, local_dims_.back(), global_first_block_col);
    ops_.push_back(std::make_unique<BlockToeplitzOperator>(dev, stream,
                                                           local_dims_.back(),
                                                           slice));
  }
  // Even splits guarantee identical local shapes, so one plan's
  // buffers serve every rank.
  plan_ = std::make_unique<FftMatvecPlan>(dev, stream, local_dims_[0], options_);
}

void LockstepCluster::forward(std::span<const double> m, std::span<double> d,
                              const PrecisionConfig& config) {
  run(m, d, config, /*adjoint=*/false);
}

void LockstepCluster::adjoint(std::span<const double> d, std::span<double> m,
                              const PrecisionConfig& config) {
  run(d, m, config, /*adjoint=*/true);
}

void LockstepCluster::run(std::span<const double> in, std::span<double> out,
                          const PrecisionConfig& config, bool adjoint) {
  const index_t nt = dims_.n_t;
  const index_t width_in = adjoint ? dims_.n_d : dims_.n_m;
  const index_t width_out = adjoint ? dims_.n_m : dims_.n_d;
  if (static_cast<index_t>(in.size()) != nt * width_in ||
      static_cast<index_t>(out.size()) != nt * width_out) {
    throw std::invalid_argument("LockstepCluster: global vector extent mismatch");
  }

  const Precision p5 = config.phase(precision::kPhaseUnpad);
  const index_t p = grid_.size();
  const index_t out_local = adjoint ? local_dims_[0].n_m_local
                                    : local_dims_[0].n_d_local;
  const index_t partial_len = nt * out_local;

  std::vector<std::vector<double>> partials_d;
  std::vector<std::vector<float>> partials_f;
  if (p5 == Precision::kDouble) {
    partials_d.assign(static_cast<std::size_t>(p),
                      std::vector<double>(static_cast<std::size_t>(partial_len)));
  } else {
    partials_f.assign(static_cast<std::size_t>(p),
                      std::vector<float>(static_cast<std::size_t>(partial_len)));
  }

  std::vector<double> global_in(in.begin(), in.end());
  max_rank_compute_s_ = 0.0;

  for (index_t rank = 0; rank < p; ++rank) {
    const LocalDims& l = local_dims_[static_cast<std::size_t>(rank)];
    const index_t in_off = adjoint ? l.d_offset : l.m_offset;
    const index_t in_cnt = adjoint ? l.n_d_local : l.n_m_local;
    const auto in_slice = slice_tosi(global_in, nt, width_in, in_off, in_cnt);

    FftMatvecPlan::PartialSink sink;
    if (p5 == Precision::kDouble) {
      sink.d = partials_d[static_cast<std::size_t>(rank)].data();
    } else {
      sink.f = partials_f[static_cast<std::size_t>(rank)].data();
    }
    const double t0 = stream_->now();
    if (adjoint) {
      plan_->adjoint_partial(*ops_[static_cast<std::size_t>(rank)], in_slice, sink,
                             config);
    } else {
      plan_->forward_partial(*ops_[static_cast<std::size_t>(rank)], in_slice, sink,
                             config);
    }
    max_rank_compute_s_ = std::max(max_rank_compute_s_, stream_->now() - t0);
  }

  // Phase-5 reduction: for the forward matvec partials combine across
  // the grid row (the p_c column ranks of each row); the adjoint
  // combines down each grid column.  Pairwise-tree order matches the
  // threaded communicator exactly.
  const index_t n_groups = adjoint ? grid_.cols() : grid_.rows();
  const index_t group_size = adjoint ? grid_.rows() : grid_.cols();
  std::vector<double> reduced_d(static_cast<std::size_t>(partial_len));
  std::vector<float> reduced_f;
  if (p5 == Precision::kSingle) {
    reduced_f.resize(static_cast<std::size_t>(partial_len));
  }

  for (index_t g = 0; g < n_groups; ++g) {
    index_t out_off = 0;
    if (p5 == Precision::kDouble) {
      std::vector<const double*> members;
      for (index_t k = 0; k < group_size; ++k) {
        const index_t rank = adjoint ? grid_.rank_of(k, g) : grid_.rank_of(g, k);
        members.push_back(partials_d[static_cast<std::size_t>(rank)].data());
        const auto& l = local_dims_[static_cast<std::size_t>(rank)];
        out_off = adjoint ? l.m_offset : l.d_offset;
      }
      comm::tree_reduce(members, reduced_d.data(), partial_len);
    } else {
      std::vector<const float*> members;
      for (index_t k = 0; k < group_size; ++k) {
        const index_t rank = adjoint ? grid_.rank_of(k, g) : grid_.rank_of(g, k);
        members.push_back(partials_f[static_cast<std::size_t>(rank)].data());
        const auto& l = local_dims_[static_cast<std::size_t>(rank)];
        out_off = adjoint ? l.m_offset : l.d_offset;
      }
      comm::tree_reduce(members, reduced_f.data(), partial_len);
      for (index_t i = 0; i < partial_len; ++i) {
        reduced_d[static_cast<std::size_t>(i)] =
            static_cast<double>(reduced_f[static_cast<std::size_t>(i)]);
      }
    }
    for (index_t t = 0; t < nt; ++t) {
      for (index_t k = 0; k < out_local; ++k) {
        out[static_cast<std::size_t>(t * width_out + out_off + k)] =
            reduced_d[static_cast<std::size_t>(t * out_local + k)];
      }
    }
  }
}

}  // namespace fftmv::core
