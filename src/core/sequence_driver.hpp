// Matvec sequencing with host-I/O overlap (paper §4.2.2, closing
// paragraph): "when computing many matvecs in sequence and saving the
// results to file, the matvec calls can be overlapped with the host
// routines that generate input vectors and save output vectors.  This
// process is used when computing dense operators ..."
//
// The driver runs a sequence of matvecs whose inputs come from a
// host-side generator and whose outputs go to a host-side consumer.
// Host work executes for real; its wall-clock cost and the matvecs'
// simulated device cost are combined under two schedules:
//   serialized — generate, apply, consume, one after another;
//   overlapped — double-buffered software pipeline where step i's
//     device work hides step i+1's generation and step i-1's
//     consumption, so the sequence cost is max(device, host) per step
//     plus pipeline fill/drain.
// The overlapped schedule is replayed on the device layer's
// Event/Stream::wait machinery — the same inter-stream dependency
// model the pipelined apply_batch executes on — with one clock for
// the host and one for the device: the device waits on each step's
// generation event (and the consumption that frees its double
// buffer), the host waits on the device before consuming.  The
// bespoke closed-form this replaced (a per-step
// max(device, gen + consume) barrier recurrence) is kept as
// `overlapped_closed_s`; event ordering relaxes the closed form's
// artificial step barrier, so the two agree within pipeline-slack
// tolerance and the harness cross-checks them.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/block_toeplitz.hpp"
#include "core/matvec_plan.hpp"
#include "util/timer.hpp"

namespace fftmv::core {

struct SequenceReport {
  index_t applies = 0;
  double device_s = 0.0;       ///< total simulated matvec time
  double host_s = 0.0;         ///< total measured host generate+consume time
  double serialized_s = 0.0;   ///< schedule without overlap
  double overlapped_s = 0.0;   ///< double-buffered schedule (event-ordered)
  /// The pre-event-machinery closed form (per-step barrier
  /// recurrence), kept as a cross-check: overlapped_s relaxes its
  /// artificial step barrier, so overlapped_s <= overlapped_closed_s
  /// and the two stay within pipeline-slack tolerance.
  double overlapped_closed_s = 0.0;

  double overlap_speedup() const {
    return overlapped_s > 0.0 ? serialized_s / overlapped_s : 1.0;
  }
};

class MatvecSequenceDriver {
 public:
  /// generate(i, m) fills the i-th input; consume(i, d) receives the
  /// i-th output.  Both run on the host thread.
  using Generator = std::function<void(index_t, std::span<double>)>;
  using Consumer = std::function<void(index_t, std::span<const double>)>;

  MatvecSequenceDriver(FftMatvecPlan& plan, const BlockToeplitzOperator& op)
      : plan_(&plan), op_(&op) {}

  /// Run `count` forward matvecs under the given precision config and
  /// report both schedules.  Outputs are produced in order.
  SequenceReport run_forward(index_t count, const Generator& generate,
                             const Consumer& consume,
                             const precision::PrecisionConfig& config) {
    const auto& dims = plan_->dims();
    const index_t in_len = dims.n_t() * dims.n_m_local;
    const index_t out_len = dims.n_t() * dims.n_d_local;
    std::vector<double> in(static_cast<std::size_t>(in_len));
    std::vector<double> out(static_cast<std::size_t>(out_len));

    SequenceReport report;
    report.applies = count;
    std::vector<double> dev_t(static_cast<std::size_t>(count));
    std::vector<double> gen_t(static_cast<std::size_t>(count));
    std::vector<double> con_t(static_cast<std::size_t>(count));

    for (index_t i = 0; i < count; ++i) {
      util::WallTimer host_timer;
      generate(i, in);
      gen_t[static_cast<std::size_t>(i)] = host_timer.seconds();

      const double dev0 = plan_->stream().now();
      plan_->forward(*op_, in, out, config);
      dev_t[static_cast<std::size_t>(i)] = plan_->stream().now() - dev0;

      host_timer.restart();
      consume(i, out);
      con_t[static_cast<std::size_t>(i)] = host_timer.seconds();

      report.device_s += dev_t[static_cast<std::size_t>(i)];
      report.host_s += gen_t[static_cast<std::size_t>(i)] +
                       con_t[static_cast<std::size_t>(i)];
    }

    // Serialized: straight sum.  Overlapped: the two-stage
    // (host/device) double-buffered software pipeline — while the
    // device runs step i, the host consumes step i-1's output and
    // generates step i+1's input; only the first generation and the
    // last consumption cannot be hidden.  Replayed on the device
    // layer's Event/Stream::wait dependency model (one clock per
    // resource), with the old closed-form barrier recurrence kept as
    // a cross-check.  By max(a,b) <= a + b neither schedule exceeds
    // the serialized one.
    report.serialized_s = report.device_s + report.host_s;
    if (count > 0) {
      device::Device& dev = plan_->stream().device();
      device::Stream host_clock(dev), device_clock(dev);
      std::vector<device::Event> gen_done(static_cast<std::size_t>(count));
      std::vector<device::Event> dev_done(static_cast<std::size_t>(count));
      std::vector<device::Event> con_done(static_cast<std::size_t>(count));
      for (index_t i = 0; i < count; ++i) {
        const auto s = static_cast<std::size_t>(i);
        if (i == 0) {
          host_clock.advance(gen_t[0]);
          gen_done[0].record(host_clock);
        }
        // Device step i: needs input i generated and, with two input
        // and two output buffers, step i-2's buffers recycled.
        device_clock.wait(gen_done[s]);
        if (i >= 2) device_clock.wait(con_done[s - 2]);
        device_clock.advance(dev_t[s]);
        dev_done[s].record(device_clock);
        // Host slot against device step i: generate step i+1's input
        // (buffer freed by the device's wait above), then consume
        // step i's output once the device delivers it.
        if (i + 1 < count) {
          host_clock.advance(gen_t[s + 1]);
          gen_done[s + 1].record(host_clock);
        }
        host_clock.wait(dev_done[s]);
        host_clock.advance(con_t[s]);
        con_done[s].record(host_clock);
      }
      report.overlapped_s =
          device::group_timing({&host_clock, &device_clock}).makespan;

      double t = gen_t[0];
      for (index_t i = 0; i < count; ++i) {
        double host_slot = 0.0;
        if (i + 1 < count) host_slot += gen_t[static_cast<std::size_t>(i + 1)];
        if (i > 0) host_slot += con_t[static_cast<std::size_t>(i - 1)];
        t += std::max(dev_t[static_cast<std::size_t>(i)], host_slot);
      }
      t += con_t[static_cast<std::size_t>(count - 1)];
      report.overlapped_closed_s = t;
    }
    return report;
  }

 private:
  FftMatvecPlan* plan_;
  const BlockToeplitzOperator* op_;
};

}  // namespace fftmv::core
