// Matvec sequencing with host-I/O overlap (paper §4.2.2, closing
// paragraph): "when computing many matvecs in sequence and saving the
// results to file, the matvec calls can be overlapped with the host
// routines that generate input vectors and save output vectors.  This
// process is used when computing dense operators ..."
//
// The driver runs a sequence of matvecs whose inputs come from a
// host-side generator and whose outputs go to a host-side consumer.
// Host work executes for real; its wall-clock cost and the matvecs'
// simulated device cost are combined under two schedules:
//   serialized — generate, apply, consume, one after another;
//   overlapped — double-buffered software pipeline where step i's
//     device work hides step i+1's generation and step i-1's
//     consumption, so the sequence cost is max(device, host) per step
//     plus pipeline fill/drain.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/block_toeplitz.hpp"
#include "core/matvec_plan.hpp"
#include "util/timer.hpp"

namespace fftmv::core {

struct SequenceReport {
  index_t applies = 0;
  double device_s = 0.0;       ///< total simulated matvec time
  double host_s = 0.0;         ///< total measured host generate+consume time
  double serialized_s = 0.0;   ///< schedule without overlap
  double overlapped_s = 0.0;   ///< double-buffered schedule

  double overlap_speedup() const {
    return overlapped_s > 0.0 ? serialized_s / overlapped_s : 1.0;
  }
};

class MatvecSequenceDriver {
 public:
  /// generate(i, m) fills the i-th input; consume(i, d) receives the
  /// i-th output.  Both run on the host thread.
  using Generator = std::function<void(index_t, std::span<double>)>;
  using Consumer = std::function<void(index_t, std::span<const double>)>;

  MatvecSequenceDriver(FftMatvecPlan& plan, const BlockToeplitzOperator& op)
      : plan_(&plan), op_(&op) {}

  /// Run `count` forward matvecs under the given precision config and
  /// report both schedules.  Outputs are produced in order.
  SequenceReport run_forward(index_t count, const Generator& generate,
                             const Consumer& consume,
                             const precision::PrecisionConfig& config) {
    const auto& dims = plan_->dims();
    const index_t in_len = dims.n_t() * dims.n_m_local;
    const index_t out_len = dims.n_t() * dims.n_d_local;
    std::vector<double> in(static_cast<std::size_t>(in_len));
    std::vector<double> out(static_cast<std::size_t>(out_len));

    SequenceReport report;
    report.applies = count;
    std::vector<double> dev_t(static_cast<std::size_t>(count));
    std::vector<double> gen_t(static_cast<std::size_t>(count));
    std::vector<double> con_t(static_cast<std::size_t>(count));

    for (index_t i = 0; i < count; ++i) {
      util::WallTimer host_timer;
      generate(i, in);
      gen_t[static_cast<std::size_t>(i)] = host_timer.seconds();

      const double dev0 = plan_->stream().now();
      plan_->forward(*op_, in, out, config);
      dev_t[static_cast<std::size_t>(i)] = plan_->stream().now() - dev0;

      host_timer.restart();
      consume(i, out);
      con_t[static_cast<std::size_t>(i)] = host_timer.seconds();

      report.device_s += dev_t[static_cast<std::size_t>(i)];
      report.host_s += gen_t[static_cast<std::size_t>(i)] +
                       con_t[static_cast<std::size_t>(i)];
    }

    // Serialized: straight sum.  Overlapped: the exact two-stage
    // (host/device) software pipeline — while the device runs step i,
    // the host consumes step i-1's output and generates step i+1's
    // input; only the first generation and the last consumption
    // cannot be hidden.  By max(a,b) <= a + b this never exceeds the
    // serialized schedule.
    report.serialized_s = report.device_s + report.host_s;
    if (count > 0) {
      double t = gen_t[0];
      for (index_t i = 0; i < count; ++i) {
        double host_slot = 0.0;
        if (i + 1 < count) host_slot += gen_t[static_cast<std::size_t>(i + 1)];
        if (i > 0) host_slot += con_t[static_cast<std::size_t>(i - 1)];
        t += std::max(dev_t[static_cast<std::size_t>(i)], host_slot);
      }
      t += con_t[static_cast<std::size_t>(count - 1)];
      report.overlapped_s = t;
    }
    return report;
  }

 private:
  FftMatvecPlan* plan_;
  const BlockToeplitzOperator* op_;
};

}  // namespace fftmv::core
