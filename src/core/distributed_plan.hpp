// Sharded batched matvec: one tenant's operator partitioned along the
// block dimension across a group of simulated ranks, with the
// collectives fused across the WHOLE right-hand-side batch.
//
// Partitioning is direction-dependent and always splits the OUTPUT
// spatial dimension, because that is the split that keeps outputs
// bit-identical to the single-rank apply in every precision config:
//
//   forward (d = F m):  rank r owns the sensor rows [d_r, d_r+n_d_r)
//     of every block — LocalDims{global, n_m, n_d_r, 0, d_r} on a
//     (R, 1) grid.  Phases 1-2 run on the full input (every rank
//     holds it after the broadcast), the phase-3 GEMV computes
//     full-width dot products for the rank's rows in exactly the
//     single-rank accumulation order, and phases 4-5 touch only the
//     rank's output slice.
//   adjoint (m = F* d): rank r owns the parameter columns
//     [m_r, m_r+n_m_r) — LocalDims{global, n_m_r, n_d, m_r, 0} on a
//     (1, R) grid — with the mirrored argument.
//
// Per-rank outputs therefore have DISJOINT support and the "tree
// reduce of partial outputs" degenerates to a gather: assembly is
// implemented as copies (summing zero-padded partials would flip the
// sign bit of a -0.0 output, the one way IEEE addition with zero is
// not the identity) while the simulated time is charged at the cost
// model's reduce tariff through the shared
// comm::CommCostModel::rank_group_collectives path.  The price of
// bit-identity is that phases 1-2 are duplicated on every rank (the
// input is not split) and each direction needs its own operator
// slice, ~2x operator storage; the paper-style input split — which
// would make partial sums meet in a real reduction and change
// rounding — stays the job of the threaded/lockstep grid backends.
//
// One caveat the tests pin down implicitly: bit-identity also needs
// the phase-3 GEMV kernel KIND to agree between the slice and the
// full operator, since the reference and optimized transpose kernels
// accumulate in different orders.  Forward always dispatches the
// reference N kernel, and for the adjoint the reduction length (n_d,
// the GEMV's m) is unchanged by the split, so under kAuto's
// `m < n || m <= 1024` rule a flip needs n_d > 1024 — far outside
// the serve envelope (the paper's N_d is 100).  Forcing
// MatvecOptions::gemv_policy away from kAuto removes even that case.
//
// Comm fusion (the tentpole's amortization move, PR 3 applied to the
// network): CommMode::kBatched charges ONE broadcast of all b inputs
// and ONE gather of all b outputs per batch; CommMode::kPerRequest
// charges b of each (the ablation bench/serve_scaling gates against).
// Compute is identical in both modes — the ablation isolates the
// alpha amortization of the collectives.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "comm/cost_model.hpp"
#include "core/block_toeplitz.hpp"
#include "core/matvec_plan.hpp"
#include "core/problem.hpp"

namespace fftmv::core {

/// How a sharded apply charges collective time: fused once per batch
/// (the production mode) or once per right-hand side (the ablation).
enum class CommMode : unsigned char { kBatched, kPerRequest };

/// One tenant's operator sliced for a group of `ranks` simulated
/// ranks, both directions: rank r's forward slice is the sensor-row
/// range of every block, its adjoint slice the parameter-column
/// range (see the header comment).  Slicing happens in the time
/// domain (slice_first_block_col) before the setup FFT, and the FFT
/// of each block entry's time series is independent of its
/// neighbours, so a slice's spectrum entries are bit-identical to the
/// corresponding entries of the full operator's spectrum.  With
/// ranks == 1 both directions share one unsliced operator.
class ShardedOperator {
 public:
  /// `first_block_col` is the global time-outer (n_t, n_d, n_m)
  /// column; empty builds unbacked slices (phantom cost-model runs).
  /// Throws std::invalid_argument when `ranks` < 1 or exceeds either
  /// output dimension (a rank with an empty slice would serve no
  /// purpose and LocalDims refuses the split).
  ShardedOperator(device::Device& dev, device::Stream& stream,
                  const ProblemDims& dims, index_t ranks,
                  std::span<const double> first_block_col);

  index_t ranks() const { return ranks_; }
  const ProblemDims& dims() const { return dims_; }

  const LocalDims& rank_dims(ApplyDirection direction, index_t rank) const {
    return direction == ApplyDirection::kForward ? fwd_dims_[check(rank)]
                                                 : adj_dims_[check(rank)];
  }
  const BlockToeplitzOperator& rank_op(ApplyDirection direction,
                                       index_t rank) const {
    return direction == ApplyDirection::kForward ? *fwd_ops_[check(rank)]
                                                 : *adj_ops_[check(rank)];
  }

  /// Materialise every slice's single-precision spectrum (serve's
  /// registration-time warm, so the lazily-cast copy is never raced
  /// on the request path).
  void warm_spectrum_f(device::Stream& stream);

  /// Materialise every slice's ABFT checksum vectors (both precisions,
  /// both directions) — the verify-mode analogue of warm_spectrum_f,
  /// so request-path applies never build checksums lazily under
  /// concurrency.
  void warm_checksums(device::Stream& stream);

 private:
  std::size_t check(index_t rank) const;

  ProblemDims dims_;
  index_t ranks_ = 1;
  std::vector<LocalDims> fwd_dims_, adj_dims_;
  // shared_ptr so the 1-rank degenerate case stores one operator once.
  std::vector<std::shared_ptr<BlockToeplitzOperator>> fwd_ops_, adj_ops_;
};

/// Orchestrates one sharded apply_batch over borrowed per-rank
/// execution resources.  The plan owns only grow-only host staging
/// for the per-rank output slices; the per-rank FftMatvecPlans and
/// streams are the caller's (the serving layer acquires them from its
/// PlanCache, benches and tests construct their own), so one
/// DistributedMatvecPlan instance can serve any tenant of any shape.
class DistributedMatvecPlan {
 public:
  /// Rank r's borrowed resources: a plan whose dims equal
  /// op.rank_dims(direction, r), driving its own stream (the plan's
  /// construction stream); `aux` optionally carries the PR 5 chunked
  /// dual-stream pipeline for the rank's slice.
  struct RankLane {
    FftMatvecPlan* plan = nullptr;
    device::Stream* aux = nullptr;
  };

  explicit DistributedMatvecPlan(comm::NetworkSpec network)
      : network_(network) {}

  /// Apply b right-hand sides through the sharded operator.  With
  /// op.ranks() == 1 this short-circuits to the existing single-rank
  /// apply_batch — zero communication charged, byte-for-byte the
  /// non-distributed path.  Otherwise: every rank stream first syncs
  /// to the group's latest clock (collectives are bulk-synchronous),
  /// the input broadcast is charged on all rank streams (fused across
  /// the batch in kBatched mode), each rank runs ONE fused
  /// FftMatvecPlan::apply_batch over its slice, the streams sync
  /// again and the output gather is charged, and the disjoint slices
  /// are copied into the caller's outputs.  Outputs are bit-identical
  /// to the single-rank apply_batch (and therefore to b independent
  /// applies) for every precision config, both directions, ragged
  /// partitions included, in both comm modes and any chunk count.
  /// Throws comm::RankFailure — before any compute or communication
  /// is charged — when the device's FaultPlan reports a rank of the
  /// group down at the entry collective sync.
  void apply_batch(const ShardedOperator& op, ApplyDirection direction,
                   const precision::PrecisionConfig& config,
                   std::span<const ConstVectorView> inputs,
                   std::span<const VectorView> outputs,
                   std::span<const RankLane> lanes,
                   CommMode mode = CommMode::kBatched,
                   index_t pipeline_chunks = 1,
                   VerifyMode verify = VerifyMode::kOff);

  /// Degraded single-survivor apply: every rank's slice runs serially
  /// on the caller's surviving stream(s) — pass lanes whose plans are
  /// all bound to one lane's stream — with ZERO communication charged
  /// (the data never leaves the survivor; this is the single-rank
  /// path's cost semantics, just with the work of all slices).
  /// Outputs are bit-identical to the sharded apply_batch, because
  /// slice outputs have disjoint support and each slice's compute is
  /// unchanged; only the modelled time differs (slower: no overlap,
  /// but no collectives).  Never consults the FaultPlan's rank hook,
  /// so it completes while the group outage lasts.
  void apply_batch_degraded(const ShardedOperator& op,
                            ApplyDirection direction,
                            const precision::PrecisionConfig& config,
                            std::span<const ConstVectorView> inputs,
                            std::span<const VectorView> outputs,
                            std::span<const RankLane> lanes,
                            index_t pipeline_chunks = 1,
                            VerifyMode verify = VerifyMode::kOff);

  /// Totals of the most recent apply: per-phase fields are the
  /// group's summed busy time (serial-equivalent work), `comm` the
  /// charged collective time and `makespan` the group's end-to-end
  /// simulated duration (max over rank streams).
  const PhaseTimings& last_timings() const { return timings_; }

  /// Per-RHS attribution: phase fields sum the ranks' own per-RHS
  /// shares, comm and makespan split evenly, so shares sum to
  /// last_timings() and spans sum to the group makespan.
  const std::vector<PhaseTimings>& last_batch_timings() const {
    return rhs_timings_;
  }

 private:
  /// Shared argument validation; returns op.ranks().
  index_t validate_batch(const ShardedOperator& op, ApplyDirection direction,
                         std::span<const ConstVectorView> inputs,
                         std::span<const VectorView> outputs,
                         std::span<const RankLane> lanes) const;
  /// Run every rank's slice apply into stage_, accumulating timings_
  /// and rhs_timings_ (comm/makespan left for the caller to fill).
  void run_rank_slices(const ShardedOperator& op, ApplyDirection direction,
                       const precision::PrecisionConfig& config,
                       std::span<const ConstVectorView> inputs,
                       std::span<const RankLane> lanes,
                       index_t pipeline_chunks, VerifyMode verify,
                       bool phantom);
  /// Copy the disjoint per-rank slices from stage_ into the caller's
  /// output vectors.
  void assemble_outputs(const ShardedOperator& op, ApplyDirection direction,
                        std::span<const VectorView> outputs,
                        bool phantom) const;

  comm::NetworkSpec network_;
  PhaseTimings timings_;
  std::vector<PhaseTimings> rhs_timings_;
  /// Grow-only per-rank staging for the b output slices.
  std::vector<std::vector<double>> stage_;
};

}  // namespace fftmv::core
