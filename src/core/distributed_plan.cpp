#include "core/distributed_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "comm/fault.hpp"
#include "core/synthetic.hpp"

namespace fftmv::core {

namespace {

double view_width(const precision::PrecisionConfig& config, int phase) {
  return config.phase(phase) == precision::Precision::kSingle ? 4.0 : 8.0;
}

}  // namespace

ShardedOperator::ShardedOperator(device::Device& dev, device::Stream& stream,
                                 const ProblemDims& dims, index_t ranks,
                                 std::span<const double> first_block_col)
    : dims_(dims), ranks_(ranks) {
  dims.validate();
  if (ranks < 1) {
    throw std::invalid_argument("ShardedOperator: ranks must be >= 1");
  }
  if (ranks > dims.n_d || ranks > dims.n_m) {
    throw std::invalid_argument(
        "ShardedOperator: ranks exceeds an output dimension (" +
        std::to_string(ranks) + " ranks for n_d=" + std::to_string(dims.n_d) +
        ", n_m=" + std::to_string(dims.n_m) + ")");
  }

  if (ranks == 1) {
    const LocalDims local = LocalDims::single_rank(dims);
    auto op =
        std::make_shared<BlockToeplitzOperator>(dev, stream, local, first_block_col);
    fwd_dims_.push_back(local);
    adj_dims_.push_back(local);
    fwd_ops_.push_back(op);
    adj_ops_.push_back(op);
    return;
  }

  // slice_first_block_col wants the global column as a vector; stage
  // it once (empty stays empty for phantom shapes).
  const std::vector<double> global_col(first_block_col.begin(),
                                       first_block_col.end());
  const comm::ProcessGrid fwd_grid(ranks, 1);  // forward: split sensors
  const comm::ProcessGrid adj_grid(1, ranks);  // adjoint: split parameters
  for (index_t r = 0; r < ranks; ++r) {
    const LocalDims fwd = LocalDims::for_rank(dims, fwd_grid, r);
    const LocalDims adj = LocalDims::for_rank(dims, adj_grid, r);
    fwd_dims_.push_back(fwd);
    adj_dims_.push_back(adj);
    if (global_col.empty()) {
      fwd_ops_.push_back(
          std::make_shared<BlockToeplitzOperator>(dev, stream, fwd, std::span<const double>{}));
      adj_ops_.push_back(
          std::make_shared<BlockToeplitzOperator>(dev, stream, adj, std::span<const double>{}));
    } else {
      const auto fwd_col = slice_first_block_col(dims, fwd, global_col);
      const auto adj_col = slice_first_block_col(dims, adj, global_col);
      fwd_ops_.push_back(
          std::make_shared<BlockToeplitzOperator>(dev, stream, fwd, fwd_col));
      adj_ops_.push_back(
          std::make_shared<BlockToeplitzOperator>(dev, stream, adj, adj_col));
    }
  }
}

std::size_t ShardedOperator::check(index_t rank) const {
  if (rank < 0 || rank >= ranks_) {
    throw std::out_of_range("ShardedOperator: rank out of range");
  }
  return static_cast<std::size_t>(rank);
}

void ShardedOperator::warm_spectrum_f(device::Stream& stream) {
  // With ranks == 1 both vectors alias one operator; the second call
  // hits the operator's cached copy.
  for (const auto& op : fwd_ops_) op->spectrum_f(stream);
  for (const auto& op : adj_ops_) op->spectrum_f(stream);
}

void ShardedOperator::warm_checksums(device::Stream& stream) {
  // A forward slice is only ever applied forward and an adjoint slice
  // only adjoint, so each list warms just its own direction (in the
  // ranks == 1 degenerate case the shared operator gets both).
  for (const auto& op : fwd_ops_) {
    op->checksum_d(stream, /*adjoint=*/false);
    op->checksum_f(stream, /*adjoint=*/false);
  }
  for (const auto& op : adj_ops_) {
    op->checksum_d(stream, /*adjoint=*/true);
    op->checksum_f(stream, /*adjoint=*/true);
  }
}

index_t DistributedMatvecPlan::validate_batch(
    const ShardedOperator& op, ApplyDirection direction,
    std::span<const ConstVectorView> inputs,
    std::span<const VectorView> outputs,
    std::span<const RankLane> lanes) const {
  if (inputs.empty()) {
    throw std::invalid_argument(
        "DistributedMatvecPlan: need at least one right-hand side");
  }
  if (outputs.size() != inputs.size()) {
    throw std::invalid_argument(
        "DistributedMatvecPlan: inputs/outputs count mismatch");
  }
  const index_t ranks = op.ranks();
  if (static_cast<index_t>(lanes.size()) != ranks) {
    throw std::invalid_argument(
        "DistributedMatvecPlan: need one RankLane per shard rank");
  }
  for (index_t r = 0; r < ranks; ++r) {
    if (lanes[r].plan == nullptr) {
      throw std::invalid_argument("DistributedMatvecPlan: null rank plan");
    }
    if (!(lanes[r].plan->dims() == op.rank_dims(direction, r))) {
      throw std::invalid_argument(
          "DistributedMatvecPlan: rank plan dims do not match the shard");
    }
  }
  return ranks;
}

void DistributedMatvecPlan::apply_batch(
    const ShardedOperator& op, ApplyDirection direction,
    const precision::PrecisionConfig& config,
    std::span<const ConstVectorView> inputs,
    std::span<const VectorView> outputs,
    std::span<const RankLane> lanes, CommMode mode, index_t pipeline_chunks,
    VerifyMode verify) {
  const index_t b = static_cast<index_t>(inputs.size());
  const index_t ranks = validate_batch(op, direction, inputs, outputs, lanes);

  if (ranks == 1) {
    // Degenerate placement: byte-for-byte the single-rank fused batch,
    // zero communication charged.
    FftMatvecPlan& plan = *lanes[0].plan;
    plan.apply_batch(op.rank_op(direction, 0), direction, config, inputs,
                     outputs,
                     BatchPipeline{pipeline_chunks, lanes[0].aux, verify});
    timings_ = plan.last_timings();
    rhs_timings_ = plan.last_batch_timings();
    return;
  }

  const bool adjoint = direction == ApplyDirection::kAdjoint;
  const ProblemDims& dims = op.dims();
  const index_t nt = dims.n_t;
  const index_t ns_in = adjoint ? dims.n_d : dims.n_m;
  const index_t ns_out = adjoint ? dims.n_m : dims.n_d;
  device::Device& dev = lanes[0].plan->stream().device();
  const bool phantom = dev.phantom();

  // Fault consult at the entry collective: a down rank aborts the
  // sharded dispatch before any compute or communication is charged,
  // so the caller can re-dispatch on the degraded single-survivor
  // path with bit-identical results.
  if (device::FaultPlan* faults = dev.fault_plan()) {
    const index_t down = faults->on_group_sync(ranks);
    if (down >= 0) throw comm::RankFailure(down, ranks);
  }

  // Collective bill through the shared cost-model path.  Batched mode
  // moves the whole batch's payload in ONE broadcast and ONE gather;
  // per-request mode (the ablation) pays the alpha terms b times.
  const comm::CommCostModel net(network_);
  const double in_bytes = static_cast<double>(nt * ns_in) *
                          view_width(config, precision::kPhasePad);
  const double out_bytes = static_cast<double>(nt * ns_out) *
                           view_width(config, precision::kPhaseUnpad);
  comm::MatvecCollectives coll;
  if (mode == CommMode::kBatched) {
    coll = net.rank_group_collectives(ranks, static_cast<double>(b) * in_bytes,
                                      static_cast<double>(b) * out_bytes);
  } else {
    const auto per = net.rank_group_collectives(ranks, in_bytes, out_bytes);
    coll.broadcast_s = static_cast<double>(b) * per.broadcast_s;
    coll.reduce_s = static_cast<double>(b) * per.reduce_s;
  }

  // Collectives are bulk-synchronous: every rank stream first catches
  // up to the group's latest clock (idle jump), then all are charged
  // the collective's duration together, staying in lockstep.
  const auto sync_group = [&lanes]() {
    const device::Stream* latest = nullptr;
    for (const auto& lane : lanes) {
      const device::Stream& s = lane.plan->stream();
      if (latest == nullptr || s.now() > latest->now()) latest = &s;
      if (lane.aux != nullptr && lane.aux->now() > latest->now()) {
        latest = lane.aux;
      }
    }
    device::Event e;
    e.record(*latest);
    for (const auto& lane : lanes) {
      lane.plan->stream().wait(e);
      if (lane.aux != nullptr) lane.aux->wait(e);
    }
    return e.seconds();
  };

  const double t_start = sync_group();
  for (const auto& lane : lanes) lane.plan->stream().advance(coll.broadcast_s);

  run_rank_slices(op, direction, config, inputs, lanes, pipeline_chunks,
                  verify, phantom);

  sync_group();
  for (const auto& lane : lanes) lane.plan->stream().advance(coll.reduce_s);
  const double t_end = sync_group();

  // Assemble: per-rank output slices have disjoint support, so the
  // gather is plain copies into the caller's vectors (already billed
  // above at the reduce tariff).
  assemble_outputs(op, direction, outputs, phantom);

  // Group accounting: phase fields stay the ranks' summed busy time
  // (serial-equivalent), comm is the collective bill charged once, and
  // the makespan is the group's end-to-end window.
  timings_.comm = coll.total();
  timings_.makespan = t_end - t_start;
  const double comm_share = coll.total() / static_cast<double>(b);
  const double span_share = timings_.makespan / static_cast<double>(b);
  for (auto& share : rhs_timings_) {
    share.comm = comm_share;
    share.makespan = span_share;
  }
}

void DistributedMatvecPlan::apply_batch_degraded(
    const ShardedOperator& op, ApplyDirection direction,
    const precision::PrecisionConfig& config,
    std::span<const ConstVectorView> inputs,
    std::span<const VectorView> outputs, std::span<const RankLane> lanes,
    index_t pipeline_chunks, VerifyMode verify) {
  const index_t b = static_cast<index_t>(inputs.size());
  const index_t ranks = validate_batch(op, direction, inputs, outputs, lanes);

  if (ranks == 1) {
    FftMatvecPlan& plan = *lanes[0].plan;
    plan.apply_batch(op.rank_op(direction, 0), direction, config, inputs,
                     outputs,
                     BatchPipeline{pipeline_chunks, lanes[0].aux, verify});
    timings_ = plan.last_timings();
    rhs_timings_ = plan.last_batch_timings();
    return;
  }

  const bool phantom = lanes[0].plan->stream().device().phantom();

  // Survivor-local window: with all lanes bound to one stream (pair)
  // the slices serialize and the makespan is the survivor's elapsed
  // clock; no sync, no collective charge.
  const auto group_now = [&lanes]() {
    double t = 0.0;
    for (const auto& lane : lanes) {
      t = std::max(t, lane.plan->stream().now());
      if (lane.aux != nullptr) t = std::max(t, lane.aux->now());
    }
    return t;
  };

  const double t_start = group_now();
  run_rank_slices(op, direction, config, inputs, lanes, pipeline_chunks,
                  verify, phantom);
  const double t_end = group_now();
  assemble_outputs(op, direction, outputs, phantom);

  timings_.comm = 0.0;
  timings_.makespan = t_end - t_start;
  const double span_share = timings_.makespan / static_cast<double>(b);
  for (auto& share : rhs_timings_) {
    share.comm = 0.0;
    share.makespan = span_share;
  }
}

void DistributedMatvecPlan::run_rank_slices(
    const ShardedOperator& op, ApplyDirection direction,
    const precision::PrecisionConfig& config,
    std::span<const ConstVectorView> inputs, std::span<const RankLane> lanes,
    index_t pipeline_chunks, VerifyMode verify, bool phantom) {
  const index_t b = static_cast<index_t>(inputs.size());
  const index_t ranks = op.ranks();
  const bool adjoint = direction == ApplyDirection::kAdjoint;
  const index_t nt = op.dims().n_t;

  timings_ = PhaseTimings{};
  rhs_timings_.assign(static_cast<std::size_t>(b), PhaseTimings{});
  if (stage_.size() < static_cast<std::size_t>(ranks)) {
    stage_.resize(static_cast<std::size_t>(ranks));
  }

  std::vector<VectorView> rank_outputs(static_cast<std::size_t>(b));
  for (index_t r = 0; r < ranks; ++r) {
    const LocalDims& local = op.rank_dims(direction, r);
    const index_t out_elems =
        nt * (adjoint ? local.n_m_local : local.n_d_local);
    if (!phantom) {
      auto& stage = stage_[static_cast<std::size_t>(r)];
      const std::size_t need = static_cast<std::size_t>(b * out_elems);
      if (stage.size() < need) stage.resize(need);
      for (index_t i = 0; i < b; ++i) {
        rank_outputs[static_cast<std::size_t>(i)] =
            VectorView{stage.data() + i * out_elems,
                       static_cast<std::size_t>(out_elems)};
      }
    } else {
      std::fill(rank_outputs.begin(), rank_outputs.end(), VectorView{});
    }

    FftMatvecPlan& plan = *lanes[r].plan;
    plan.apply_batch(op.rank_op(direction, r), direction, config, inputs,
                     rank_outputs,
                     BatchPipeline{pipeline_chunks, lanes[r].aux, verify});
    timings_ += plan.last_timings();
    const auto& shares = plan.last_batch_timings();
    for (index_t i = 0; i < b; ++i) {
      rhs_timings_[static_cast<std::size_t>(i)] +=
          shares[static_cast<std::size_t>(i)];
    }
  }
}

void DistributedMatvecPlan::assemble_outputs(
    const ShardedOperator& op, ApplyDirection direction,
    std::span<const VectorView> outputs, bool phantom) const {
  if (phantom) return;
  const index_t b = static_cast<index_t>(outputs.size());
  const index_t ranks = op.ranks();
  const bool adjoint = direction == ApplyDirection::kAdjoint;
  const ProblemDims& dims = op.dims();
  const index_t nt = dims.n_t;
  const index_t ns_out = adjoint ? dims.n_m : dims.n_d;
  for (index_t i = 0; i < b; ++i) {
    double* out = outputs[static_cast<std::size_t>(i)].data();
    for (index_t r = 0; r < ranks; ++r) {
      const LocalDims& local = op.rank_dims(direction, r);
      const index_t offset = adjoint ? local.m_offset : local.d_offset;
      const index_t count = adjoint ? local.n_m_local : local.n_d_local;
      const index_t out_elems = nt * count;
      const double* slice =
          stage_[static_cast<std::size_t>(r)].data() + i * out_elems;
      for (index_t t = 0; t < nt; ++t) {
        const double* src = slice + t * count;
        double* dst = out + t * ns_out + offset;
        std::copy(src, src + count, dst);
      }
    }
  }
}

}  // namespace fftmv::core
