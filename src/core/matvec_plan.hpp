// The FFTMatvec execution plan: five-phase mixed-precision matvecs
// with a block-triangular Toeplitz operator (paper §2.4, §3.2).
//
// Forward (F) matvec on rank (r, c) of a p_r x p_c grid:
//   1. broadcast the local parameter chunk over the grid column in
//      the phase-1 precision, then fused TOSI->SOTI transpose +
//      zero-pad (+cast to the FFT precision),
//   2. batched real FFT (n_m_local sequences of length 2 N_t),
//   3. Fourier-space reorder, strided batched GEMV over the N_t + 1
//      frequency blocks, reorder back — the reorders are charged to
//      the SBGEMV phase exactly as the artifact's timing output does,
//   4. batched inverse real FFT (n_d_local sequences),
//   5. fused unpad + SOTI->TOSI transpose, tree reduction of partial
//      outputs over the grid row, final cast to double.
// The adjoint (F*) matvec mirrors the pipeline with the conjugate-
// transpose SBGEMV and broadcast/reduce roles swapped.
//
// Precision semantics (§3.2): input/output are always double; each
// phase computes in its configured precision; casts occur where the
// working precision changes and are fused into the adjacent memory
// operations (toggleable for the fusion ablation); the pure reorders
// read the producer's precision and write the consumer's, so traffic
// runs at the lowest adjacent width.
//
// Batched applies (apply_batch) optionally execute phase-pipelined:
// the RHS dimension splits into chunks software-pipelined over two
// streams under the device layer's Event/Stream::wait ordering
// contract (see BatchPipeline and device/stream.hpp), overlapping one
// chunk's SBGEMV with its successor's pad+FFT.  Outputs are
// bit-identical to the serial batch; PhaseTimings separates the
// end-to-end makespan from the busy-time phase fields.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "blas/sbgemv.hpp"
#include "comm/communicator.hpp"
#include "comm/cost_model.hpp"
#include "core/block_toeplitz.hpp"
#include "core/problem.hpp"
#include "device/device_vector.hpp"
#include "device/stream.hpp"
#include "fft/plan.hpp"
#include "precision/precision.hpp"

namespace fftmv::core {

/// Simulated seconds per computational phase of one matvec
/// (mirroring the runtime breakdowns of Figures 2-3).
///
/// Makespan vs busy time: the per-phase fields are *busy* time — the
/// simulated seconds each phase's kernels were charged, regardless of
/// which stream ran them — so total() is the serial-equivalent work.
/// `makespan` is the end-to-end simulated duration of the apply.  A
/// serial apply sets makespan == total(); a pipelined apply_batch
/// overlaps the SBGEMV stage with the FFT stages of neighbouring RHS
/// chunks on a second stream, so makespan < total() and the gap is
/// exactly the overlapped time (credited max-over-streams, see
/// device/stream.hpp).  Per-RHS attributions (last_batch_timings)
/// split both: phase fields sum to the batch's phase fields and
/// makespan shares sum to the batch makespan.
struct PhaseTimings {
  double pad = 0.0;     ///< broadcast staging + transpose/pad (+cast)
  double fft = 0.0;     ///< phase-2 batched FFT
  double sbgemv = 0.0;  ///< phase-3 GEMV incl. both Fourier reorders
  double ifft = 0.0;    ///< phase-4 batched IFFT
  double unpad = 0.0;   ///< unpad/transpose + final cast
  double comm = 0.0;    ///< modelled broadcast + reduction time
  double makespan = 0.0;  ///< end-to-end duration (== total() when serial)

  double compute_total() const { return pad + fft + sbgemv + ifft + unpad; }
  double total() const { return compute_total() + comm; }
  /// End-to-end simulated duration: the recorded makespan, falling
  /// back to the busy total for timings that predate pipelining
  /// (zero-initialised accumulators).
  double span() const { return makespan > 0.0 ? makespan : total(); }

  PhaseTimings& operator+=(const PhaseTimings& o);
  PhaseTimings& operator*=(double s);
};

/// Direction selector for the batched entry point (forward() /
/// adjoint() remain the single-RHS spellings).
enum class ApplyDirection : unsigned char { kForward, kAdjoint };

/// ABFT verification level for apply_batch:
///   kOff       no checks (today's behaviour, zero extra cost);
///   kChecksum  Huang-Abraham column checksums on the grouped
///              phase-3 SBGEMV — covers the library's silent-
///              corruption injection site at a few percent modelled
///              overhead;
///   kParanoid  checksum plus a Parseval energy invariant on every
///              phase-2/4 FFT chunk (defense in depth for corruption
///              sources the GEMV checksum cannot see).
/// Detection throws device::SilentCorruption; outputs of a verified
/// apply are bit-identical to an unverified one (the checks only
/// read), so a clean recompute after a detection is a full repair.
/// Tolerances come from core::verify_tolerances, calibrated per
/// precision config so legitimate rounding never trips a check.
enum class VerifyMode : unsigned char { kOff, kChecksum, kParanoid };

inline const char* verify_mode_name(VerifyMode m) {
  switch (m) {
    case VerifyMode::kOff: return "off";
    case VerifyMode::kChecksum: return "checksum";
    case VerifyMode::kParanoid: return "paranoid";
  }
  return "?";
}

/// Mutable / immutable views of one right-hand side or output vector
/// in an apply_batch call.
using VectorView = std::span<double>;
using ConstVectorView = std::span<const double>;

/// Pipelined-execution request for apply_batch: split the batch's b
/// right-hand sides into `chunks` contiguous chunks and software-
/// pipeline them across two streams — chunk i's phase-3 grouped
/// SBGEMV (plus both Fourier reorders) runs on the auxiliary stream
/// while chunk i+1's phase-1/2 pad+FFT runs on the plan's own stream,
/// with phase-4/5 draining behind.  Cross-stream ordering uses the
/// device layer's Event/Stream::wait contract; the spectrum
/// workspaces ping-pong so a chunk's FFT never overwrites the
/// spectrum its predecessor's GEMV is still consuming.  Results are
/// bit-identical to the serial batch for every precision config
/// (chunks partition the RHS dimension; per-RHS arithmetic is
/// untouched); chunks <= 1 is exactly today's serial execution.
struct BatchPipeline {
  /// RHS chunks to pipeline; clamped to the batch size; <= 1 = serial.
  index_t chunks = 1;
  /// Stream for the SBGEMV stage.  nullptr lets the plan use an
  /// internally-owned second stream; the serving layer passes its
  /// lane's own auxiliary stream instead (stream pairs are lane-
  /// owned, so a cached plan is still never driven by two threads).
  device::Stream* aux = nullptr;
  /// ABFT verification level for this batch (see VerifyMode).  Lives
  /// here rather than in MatvecOptions so flipping it never splits
  /// plan-cache entries.
  VerifyMode verify = VerifyMode::kOff;
};

struct MatvecOptions {
  blas::GemvKernelPolicy gemv_policy = blas::GemvKernelPolicy::kAuto;
  /// When false, precision changes run as separate cast kernels after
  /// a same-precision memory op (the fusion ablation of §3.2).
  bool fuse_casts = true;
  /// Network model used to charge communication time in distributed
  /// applies.
  comm::NetworkSpec network = comm::NetworkSpec::frontier();

  bool operator==(const MatvecOptions&) const = default;
};

class FftMatvecPlan {
 public:
  FftMatvecPlan(device::Device& dev, device::Stream& stream,
                const LocalDims& dims, MatvecOptions options = {});

  const LocalDims& dims() const { return dims_; }
  device::Stream& stream() const { return *stream_; }
  const MatvecOptions& options() const { return options_; }

  /// d = F m.  `m` is the rank-local TOSI chunk (N_t x n_m_local,
  /// significant on the grid-column root), `d` receives the local
  /// TOSI result (N_t x n_d_local, valid on the grid-row root).
  /// Single-rank when `comms == nullptr`.
  void forward(const BlockToeplitzOperator& op, std::span<const double> m,
               std::span<double> d, const precision::PrecisionConfig& config,
               comm::RankComms* comms = nullptr);

  /// m = F* d; mirror conventions of forward().
  void adjoint(const BlockToeplitzOperator& op, std::span<const double> d,
               std::span<double> m, const precision::PrecisionConfig& config,
               comm::RankComms* comms = nullptr);

  /// Execute b same-shape right-hand sides as ONE fused pipeline
  /// (single-rank only): the phase-1/5 transposes loop over the RHS
  /// dimension, the phase-2/4 real FFTs run the cached plan with a
  /// runtime batch multiplier (b * n_s sequences in one launch), and
  /// phase 3 is a single multi-RHS strided batched GEMV that pays the
  /// operator's matrix traffic once per frequency block instead of
  /// once per request.  Results are bit-identical to b independent
  /// forward()/adjoint() calls for every precision config; b == 1 is
  /// the degenerate case.  last_timings() afterwards holds the totals
  /// for the whole batch and last_batch_timings() the per-RHS shares.
  /// `pipeline` requests chunked dual-stream execution (bit-identical
  /// outputs, lower makespan — see BatchPipeline).
  void apply_batch(const BlockToeplitzOperator& op, ApplyDirection direction,
                   const precision::PrecisionConfig& config,
                   std::span<const ConstVectorView> inputs,
                   std::span<const VectorView> outputs,
                   const BatchPipeline& pipeline = {});

  /// One operator's contiguous slice of a grouped batch: `rhs_count`
  /// right-hand sides applied through `op`.  Every group's operator
  /// must share this plan's LocalDims (same-shape requests from
  /// different tenants).
  struct OperatorGroup {
    const BlockToeplitzOperator* op = nullptr;
    index_t rhs_count = 0;
  };

  /// Grouped batched apply: b right-hand sides spanning several
  /// same-shape operators run as ONE fused pipeline.  Phases 1/2/4/5
  /// are operator-agnostic and execute exactly as in the single-
  /// operator apply_batch; only phase 3 switches to the grouped
  /// multi-operator SBGEMV (blas::sbgemv_grouped), whose per-group
  /// arithmetic — and, for a single group, modelled cost — is
  /// identical to the flat multi-RHS kernel.  Inputs/outputs are
  /// ordered group by group: group g's RHS r sits at global index
  /// (sum of earlier groups' rhs_count) + r.  Results are
  /// bit-identical to per-operator apply_batch calls (and therefore
  /// to b independent applies) in every precision config, pipelined
  /// or serial (chunks split the RHS dimension across group
  /// boundaries; each chunk carries its groups' slice).
  void apply_batch(std::span<const OperatorGroup> groups,
                   ApplyDirection direction,
                   const precision::PrecisionConfig& config,
                   std::span<const ConstVectorView> inputs,
                   std::span<const VectorView> outputs,
                   const BatchPipeline& pipeline = {});

  /// Receives the un-reduced phase-5 partial output in the phase-5
  /// precision (exactly one pointer must be set, matching the
  /// config's phase-5 precision).  Used by the sequential
  /// LockstepCluster, which performs the tree reduction itself.
  struct PartialSink {
    float* f = nullptr;
    double* d = nullptr;
  };

  /// Run phases 1-4 plus the local unpad/transpose and deposit the
  /// partial (n_t x n_d_local) into `sink`; no reduction, no final
  /// cast.
  void forward_partial(const BlockToeplitzOperator& op,
                       std::span<const double> m, const PartialSink& sink,
                       const precision::PrecisionConfig& config);

  /// Adjoint analogue; partial extent is n_t x n_m_local.
  void adjoint_partial(const BlockToeplitzOperator& op,
                       std::span<const double> d, const PartialSink& sink,
                       const precision::PrecisionConfig& config);

  /// Timings of the most recent apply (an apply_batch reports the
  /// whole batch's totals).
  const PhaseTimings& last_timings() const { return timings_; }

  /// Per-RHS attribution of the most recent apply_batch's totals
  /// (size = the batch's RHS count; valid until the next apply).
  /// Phases 1/2/4/5 split evenly — every RHS is the same shape — but
  /// the SBGEMV phase splits by modelled work: the GEMV launch's time
  /// is shared across groups in proportion to each group's share of
  /// the modelled traffic (one matrix read per group + the group's
  /// vector traffic), then evenly within a group, so an RHS riding a
  /// large group is correctly attributed less matrix traffic than a
  /// singleton.  The shares always sum to last_timings().  With one
  /// group the split is exactly even.
  const std::vector<PhaseTimings>& last_batch_timings() const {
    return rhs_timings_;
  }

  /// Pipeline executions so far: +1 per forward/adjoint/partial apply
  /// and +1 per apply_batch REGARDLESS of its RHS count.  The serving
  /// layer's tests hook this to assert a coalesced batch costs one
  /// plan execution.
  std::int64_t executions() const { return executions_; }

 private:
  struct DualReal {
    std::optional<device::device_vector<double>> d;
    std::optional<device::device_vector<float>> f;
    template <class T>
    T* get(device::Device& dev, index_t n);
  };
  struct DualComplex {
    std::optional<device::device_vector<cdouble>> d;
    std::optional<device::device_vector<cfloat>> f;
    template <class T>
    T* get(device::Device& dev, index_t n);
  };

  /// Shared implementation of forward/adjoint (`adjoint` flips the
  /// sensor/parameter roles and uses the conjugate-transpose GEMV).
  /// When `partial` is set, the pipeline stops after the local
  /// unpad/transpose and deposits the phase-5 partial there.
  void apply(const BlockToeplitzOperator& op, std::span<const double> in,
             std::span<double> out, const precision::PrecisionConfig& config,
             comm::RankComms* comms, bool adjoint,
             const PartialSink* partial = nullptr);

  device::Device* dev_;
  device::Stream* stream_;
  LocalDims dims_;
  MatvecOptions options_;
  PhaseTimings timings_;
  std::vector<PhaseTimings> rhs_timings_;
  std::int64_t executions_ = 0;

  // FFT plans per (precision, batch-role); built lazily.
  std::optional<fft::BatchedRealFft<double>> fft_m_d_, fft_d_d_;
  std::optional<fft::BatchedRealFft<float>> fft_m_f_, fft_d_f_;

  // Pipeline buffers (shared between directions, max-size semantics).
  DualReal bcast_;     ///< phase-1 staging of the broadcast input
  DualReal padded_;    ///< SOTI zero-padded real input (x L)
  DualComplex spec_;   ///< spectrum, space-outer (ns x n_f)
  DualComplex spec_t_; ///< spectrum, frequency-outer (n_f x ns)
  DualComplex ospec_t_;///< GEMV output spectrum, frequency-outer
  DualComplex ospec_;  ///< GEMV output spectrum, space-outer
  DualReal opad_;      ///< padded real output (x L)
  DualReal olocal_;    ///< unpadded TOSI partial output
  DualReal oreduce_;   ///< reduction receive buffer (group root)

  // Second spectrum workspace set for pipelined apply_batch: chunk i
  // uses set i % 2, so chunk i+1's FFT (stream A) writes while chunk
  // i's GEMV stage (stream B) still reads the other set.  Serial
  // applies only ever touch set 0 (the members above).
  DualComplex spec_alt_, spec_t_alt_, ospec_t_alt_, ospec_alt_;
  /// Lazily-created second stream for pipelined applies when the
  /// caller does not supply one (BatchPipeline::aux == nullptr).
  std::optional<device::Stream> owned_aux_;

  // ABFT verify workspaces (double-width regardless of the precision
  // config — see blas::SbgemvVerify::acc_t): per (frequency block,
  // RHS) checksum dots and magnitude estimates.  A single set
  // suffices even when pipelined: launches execute synchronously at
  // issue time, so stage 2 writes and consumes them within one call.
  std::optional<device::device_vector<cdouble>> chk_;
  std::optional<device::device_vector<double>> chk_scale_;
};

}  // namespace fftmv::core
