// Synthetic workload generation for tests and benchmarks.
//
// Vectors and operator blocks are initialised with the paper's
// mantissa-filling scheme (§4.2.1): doubles whose low mantissa bits
// are forced on, so every single-precision cast is lossy and the
// Pareto analysis is unbiased.  Operator blocks decay exponentially
// in time, mimicking the impulse responses of dissipative dynamical
// systems and keeping the frequency blocks well scaled.
#pragma once

#include <cmath>
#include <vector>

#include "core/problem.hpp"
#include "util/rng.hpp"

namespace fftmv::core {

/// First block column, time-outer (n_t, n_d, n_m), with per-block
/// magnitude decaying as exp(-decay_rate * t / n_t).
inline std::vector<double> make_first_block_col(const LocalDims& dims,
                                                std::uint64_t seed,
                                                double decay_rate = 4.0) {
  const index_t nt = dims.n_t();
  const index_t nd = dims.n_d_local;
  const index_t nm = dims.n_m_local;
  std::vector<double> h(static_cast<std::size_t>(nt * nd * nm));
  util::Rng rng(seed);
  for (index_t t = 0; t < nt; ++t) {
    const double scale =
        std::exp(-decay_rate * static_cast<double>(t) / static_cast<double>(nt));
    double* block = h.data() + t * nd * nm;
    for (index_t k = 0; k < nd * nm; ++k) {
      block[k] = util::fill_low_mantissa(scale * rng.uniform(-1.0, 1.0));
    }
  }
  return h;
}

/// Input vector of unrepresentable-in-float doubles in [-1, 1).
inline std::vector<double> make_input_vector(index_t n, std::uint64_t seed) {
  std::vector<double> v(static_cast<std::size_t>(n));
  util::Rng rng(seed);
  util::fill_uniform_unrepresentable(rng, v.data(), n);
  return v;
}

/// Extract rank (row, col)'s slice of a global first block column.
/// Global layout time-outer (n_t, N_d, N_m); local likewise with the
/// rank's sensor/parameter ranges.
inline std::vector<double> slice_first_block_col(
    const ProblemDims& global, const LocalDims& local,
    const std::vector<double>& global_col) {
  const index_t nt = global.n_t;
  std::vector<double> out(
      static_cast<std::size_t>(nt * local.n_d_local * local.n_m_local));
  for (index_t t = 0; t < nt; ++t) {
    for (index_t i = 0; i < local.n_d_local; ++i) {
      const double* src = global_col.data() + t * global.n_d * global.n_m +
                          (local.d_offset + i) * global.n_m + local.m_offset;
      double* dst =
          out.data() + t * local.n_d_local * local.n_m_local + i * local.n_m_local;
      for (index_t j = 0; j < local.n_m_local; ++j) dst[j] = src[j];
    }
  }
  return out;
}

/// Extract the TOSI column slice [offset, offset+count) of a global
/// TOSI vector with `width` space points per time step.
inline std::vector<double> slice_tosi(const std::vector<double>& global,
                                      index_t n_t, index_t width, index_t offset,
                                      index_t count) {
  std::vector<double> out(static_cast<std::size_t>(n_t * count));
  for (index_t t = 0; t < n_t; ++t) {
    for (index_t k = 0; k < count; ++k) {
      out[static_cast<std::size_t>(t * count + k)] =
          global[static_cast<std::size_t>(t * width + offset + k)];
    }
  }
  return out;
}

/// Scatter a TOSI slice back into a global TOSI vector.
inline void scatter_tosi(const std::vector<double>& local, index_t n_t,
                         index_t width, index_t offset, index_t count,
                         std::vector<double>& global) {
  for (index_t t = 0; t < n_t; ++t) {
    for (index_t k = 0; k < count; ++k) {
      global[static_cast<std::size_t>(t * width + offset + k)] =
          local[static_cast<std::size_t>(t * count + k)];
    }
  }
}

}  // namespace fftmv::core
