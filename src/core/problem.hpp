// Problem dimensions and their distribution over the process grid.
#pragma once

#include <algorithm>
#include <compare>
#include <stdexcept>

#include "comm/process_grid.hpp"
#include "util/math.hpp"
#include "util/types.hpp"

namespace fftmv::core {

/// Global problem shape (paper §2.3): N_m spatial parameter points,
/// N_d sensors (N_d << N_m in the inverse-problem setting), N_t time
/// steps (N_t >> 1).
struct ProblemDims {
  index_t n_m = 0;
  index_t n_d = 0;
  index_t n_t = 0;

  /// Circulant embedding length (zero padding to 2 N_t, §2.4).
  index_t padded_length() const { return 2 * n_t; }
  /// Fourier bins after the real FFT: N_t + 1 (the SBGEMV batch
  /// count, §3.1.1).
  index_t num_frequencies() const { return n_t + 1; }

  void validate() const {
    if (n_m <= 0 || n_d <= 0 || n_t <= 0) {
      throw std::invalid_argument("ProblemDims: all dimensions must be positive");
    }
  }

  /// Lexicographic over (n_m, n_d, n_t); keeps shape-keyed
  /// containers (e.g. the serving batcher) in sync with equality by
  /// construction.
  auto operator<=>(const ProblemDims&) const = default;
};

/// The slice of the problem owned by one rank of a p_r x p_c grid:
/// grid rows split the sensors, grid columns split the parameters
/// (block distribution; earlier chunks take the remainder).
struct LocalDims {
  ProblemDims global;
  index_t n_m_local = 0;
  index_t n_d_local = 0;
  index_t m_offset = 0;
  index_t d_offset = 0;

  index_t n_t() const { return global.n_t; }
  index_t padded_length() const { return global.padded_length(); }
  index_t num_frequencies() const { return global.num_frequencies(); }

  static LocalDims single_rank(const ProblemDims& dims) {
    dims.validate();
    return LocalDims{dims, dims.n_m, dims.n_d, 0, 0};
  }

  auto operator<=>(const LocalDims&) const = default;

  static LocalDims for_rank(const ProblemDims& dims, const comm::ProcessGrid& grid,
                            index_t rank) {
    dims.validate();
    const index_t row = grid.row_of(rank);
    const index_t col = grid.col_of(rank);
    LocalDims local;
    local.global = dims;
    split(dims.n_m, grid.cols(), col, local.n_m_local, local.m_offset);
    split(dims.n_d, grid.rows(), row, local.n_d_local, local.d_offset);
    return local;
  }

 private:
  /// Block distribution of `total` over `parts`: the first
  /// (total % parts) parts get one extra element.
  static void split(index_t total, index_t parts, index_t which, index_t& count,
                    index_t& offset) {
    if (parts > total) {
      throw std::invalid_argument(
          "LocalDims: more grid divisions than elements in a dimension");
    }
    const index_t base = total / parts;
    const index_t extra = total % parts;
    count = base + (which < extra ? 1 : 0);
    offset = which * base + std::min(which, extra);
  }
};

}  // namespace fftmv::core
