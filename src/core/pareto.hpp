// Pareto-front analysis over the 32 mixed-precision configurations
// (paper §3.2, §4.2): for a target error tolerance, pick the
// configuration with the best runtime among those whose relative
// error stays below the tolerance.
#pragma once

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "precision/precision.hpp"

namespace fftmv::core {

struct ConfigResult {
  precision::PrecisionConfig config;
  double time_s = 0.0;
  double rel_error = 0.0;
};

/// Non-dominated subset under (minimise time, minimise error),
/// sorted by ascending time.  A point is dominated when another is
/// no worse in both coordinates and strictly better in one.
inline std::vector<ConfigResult> pareto_front(std::vector<ConfigResult> results) {
  std::sort(results.begin(), results.end(), [](const auto& a, const auto& b) {
    if (a.time_s != b.time_s) return a.time_s < b.time_s;
    return a.rel_error < b.rel_error;
  });
  std::vector<ConfigResult> front;
  double best_error = std::numeric_limits<double>::infinity();
  for (const auto& r : results) {
    if (r.rel_error < best_error) {
      front.push_back(r);
      best_error = r.rel_error;
    }
  }
  return front;
}

/// Fastest configuration whose error is within tolerance; nullopt if
/// none qualifies.  `time_slack` implements the paper's observation
/// that lowering additional phases "can speed up those individual
/// phases, [but] the contribution to overall speedup is negligible
/// [while] such computations incur additional error" (§4.2.1): among
/// configurations within `time_slack` (relative) of the fastest
/// feasible time, the lowest-error one is selected.
inline std::optional<ConfigResult> optimal_config(
    const std::vector<ConfigResult>& results, double tolerance,
    double time_slack = 0.0) {
  std::optional<ConfigResult> fastest;
  for (const auto& r : results) {
    if (r.rel_error > tolerance) continue;
    if (!fastest || r.time_s < fastest->time_s) fastest = r;
  }
  if (!fastest || time_slack <= 0.0) return fastest;
  std::optional<ConfigResult> best = fastest;
  for (const auto& r : results) {
    if (r.rel_error > tolerance) continue;
    if (r.time_s > fastest->time_s * (1.0 + time_slack)) continue;
    if (r.rel_error < best->rel_error ||
        (r.rel_error == best->rel_error && r.time_s < best->time_s)) {
      best = r;
    }
  }
  return best;
}

}  // namespace fftmv::core
