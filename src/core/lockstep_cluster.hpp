// Sequential simulation of a multi-rank FFTMatvec run.
//
// The thread communicator (comm/communicator.hpp) runs real
// concurrent ranks, but a thread per rank stops scaling long before
// the paper's 4,096 GPUs.  LockstepCluster executes the same
// distributed algorithm rank by rank on one device: each rank's
// phases 1-4 run through the ordinary FftMatvecPlan, and the phase-5
// reduction combines the partials in the identical pairwise-tree
// order the threaded backend uses.  Numerics — in particular the
// distribution-dependent rounding the paper's Figure 4 error series
// measures (n_m = ceil(N_m/p_c) growth, log2(p) reduction depth) —
// are therefore bit-identical to a real run at any rank count that
// fits in memory.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "comm/process_grid.hpp"
#include "core/block_toeplitz.hpp"
#include "core/matvec_plan.hpp"
#include "core/synthetic.hpp"

namespace fftmv::core {

class LockstepCluster {
 public:
  /// `global_first_block_col` is the global time-outer (n_t, N_d,
  /// N_m) operator column; each rank's slice is extracted and set up
  /// independently, exactly as ranks would do on their own data.
  LockstepCluster(device::Device& dev, device::Stream& stream,
                  const ProblemDims& dims, const comm::ProcessGrid& grid,
                  const std::vector<double>& global_first_block_col,
                  MatvecOptions options = {});

  const comm::ProcessGrid& grid() const { return grid_; }
  const ProblemDims& dims() const { return dims_; }

  /// Global d = F m: `m` is the global TOSI (n_t x N_m) input, `d`
  /// the global TOSI (n_t x N_d) output.
  void forward(std::span<const double> m, std::span<double> d,
               const precision::PrecisionConfig& config);

  /// Global m = F* d.
  void adjoint(std::span<const double> d, std::span<double> m,
               const precision::PrecisionConfig& config);

  /// Maximum per-rank compute time of the last apply (the simulated
  /// critical path, excluding communication).
  double max_rank_compute_seconds() const { return max_rank_compute_s_; }

 private:
  void run(std::span<const double> in, std::span<double> out,
           const precision::PrecisionConfig& config, bool adjoint);

  device::Device* dev_;
  device::Stream* stream_;
  ProblemDims dims_;
  comm::ProcessGrid grid_;
  MatvecOptions options_;
  std::vector<LocalDims> local_dims_;                       // per rank
  std::vector<std::unique_ptr<BlockToeplitzOperator>> ops_;  // per rank
  std::unique_ptr<FftMatvecPlan> plan_;                      // shared buffers
  double max_rank_compute_s_ = 0.0;
};

}  // namespace fftmv::core
